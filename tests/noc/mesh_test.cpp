#include "noc/mesh.hpp"

#include <gtest/gtest.h>

#include <map>
#include <stdexcept>

#include "power/tech_params.hpp"

namespace optiplet::noc {
namespace {

MeshConfig small_mesh_config() {
  MeshConfig c;
  c.width = 3;
  c.height = 3;
  return c;
}

ElectricalMesh make_mesh(MeshConfig c = small_mesh_config()) {
  return ElectricalMesh(c, power::ElectricalTech{});
}

TEST(Mesh, SinglePacketIsDelivered) {
  auto mesh = make_mesh();
  mesh.inject(0, 8, 128);
  ASSERT_TRUE(mesh.run_until_drained(10'000));
  EXPECT_EQ(mesh.stats().packets_ejected, 1u);
  EXPECT_EQ(mesh.stats().packets_injected, 1u);
}

TEST(Mesh, SelfTrafficStaysLocal) {
  auto mesh = make_mesh();
  mesh.inject(4, 4, 128);
  ASSERT_TRUE(mesh.run_until_drained(1'000));
  EXPECT_EQ(mesh.stats().packets_ejected, 1u);
  // Only the local router is traversed: no inter-router link use.
  EXPECT_EQ(mesh.stats().link_traversals, 0u);
}

TEST(Mesh, ZeroLoadLatencyMatchesModel) {
  auto mesh = make_mesh();
  // 1 hop: node 0 -> node 1, single flit.
  mesh.inject(0, 1, 128);
  ASSERT_TRUE(mesh.run_until_drained(1'000));
  const double measured = mesh.stats().packet_latency_cycles.mean();
  EXPECT_NEAR(measured,
              static_cast<double>(mesh.zero_load_latency_cycles(128, 1)),
              1.0);
}

TEST(Mesh, ZeroLoadLatencyGrowsWithHops) {
  // Corner to corner on 3x3: 4 hops.
  auto mesh = make_mesh();
  mesh.inject(0, 8, 128);
  ASSERT_TRUE(mesh.run_until_drained(1'000));
  const double corner = mesh.stats().packet_latency_cycles.mean();

  auto mesh2 = make_mesh();
  mesh2.inject(0, 1, 128);
  ASSERT_TRUE(mesh2.run_until_drained(1'000));
  const double adjacent = mesh2.stats().packet_latency_cycles.mean();
  EXPECT_GT(corner, adjacent);
  EXPECT_NEAR(corner - adjacent, 3.0 * 6.0, 1.0);  // 3 extra hops x 6 cyc
}

TEST(Mesh, SerializationAddsBodyFlits) {
  auto mesh = make_mesh();
  mesh.inject(0, 1, 128 * 10);  // 10 flits
  ASSERT_TRUE(mesh.run_until_drained(1'000));
  const double ten_flit = mesh.stats().packet_latency_cycles.mean();

  auto mesh2 = make_mesh();
  mesh2.inject(0, 1, 128);
  ASSERT_TRUE(mesh2.run_until_drained(1'000));
  EXPECT_NEAR(ten_flit - mesh2.stats().packet_latency_cycles.mean(), 9.0,
              1.0);
}

TEST(Mesh, HopDistanceIsManhattan) {
  auto mesh = make_mesh();
  EXPECT_EQ(mesh.hop_distance(0, 8), 4u);
  EXPECT_EQ(mesh.hop_distance(0, 0), 0u);
  EXPECT_EQ(mesh.hop_distance(3, 5), 2u);
  EXPECT_EQ(mesh.hop_distance(1, 7), 2u);
}

TEST(Mesh, AllPacketsDeliveredExactlyOnce) {
  auto mesh = make_mesh();
  // Every node sends to every other node.
  for (NodeId s = 0; s < 9; ++s) {
    for (NodeId d = 0; d < 9; ++d) {
      if (s != d) {
        mesh.inject(s, d, 256);
      }
    }
  }
  ASSERT_TRUE(mesh.run_until_drained(100'000));
  EXPECT_EQ(mesh.stats().packets_ejected, 72u);
  EXPECT_EQ(mesh.stats().packets_injected, 72u);
}

TEST(Mesh, HeavyHotspotEventuallyDrains) {
  // All 8 nodes read-pattern from node 4 (the memory chiplet hotspot).
  auto mesh = make_mesh();
  for (int rep = 0; rep < 50; ++rep) {
    for (NodeId d = 0; d < 9; ++d) {
      if (d != 4) {
        mesh.inject(4, d, 512);
      }
    }
  }
  ASSERT_TRUE(mesh.run_until_drained(1'000'000));
  EXPECT_EQ(mesh.stats().packets_ejected, 400u);
}

TEST(Mesh, WiderLinksReduceSerialization) {
  MeshConfig wide = small_mesh_config();
  wide.link_width_bits = 512;
  auto mesh_wide = ElectricalMesh(wide, power::ElectricalTech{});
  auto mesh_narrow = make_mesh();
  mesh_wide.inject(0, 2, 4096);
  mesh_narrow.inject(0, 2, 4096);
  ASSERT_TRUE(mesh_wide.run_until_drained(10'000));
  ASSERT_TRUE(mesh_narrow.run_until_drained(10'000));
  EXPECT_LT(mesh_wide.stats().packet_latency_cycles.mean(),
            mesh_narrow.stats().packet_latency_cycles.mean());
}

TEST(Mesh, EnergyLedgerTracksActivity) {
  auto mesh = make_mesh();
  mesh.inject(0, 8, 1024);
  ASSERT_TRUE(mesh.run_until_drained(10'000));
  const auto ledger = mesh.energy();
  EXPECT_GT(ledger.total_dynamic_energy_j(), 0.0);
  EXPECT_GT(ledger.total_static_power_w(), 0.0);
  // Router energy scales with flit-hops: 8 flits x 5 routers traversed.
  EXPECT_GT(mesh.stats().flit_hops, 0u);
}

TEST(Mesh, DrainedReportsInFlightTraffic) {
  auto mesh = make_mesh();
  EXPECT_TRUE(mesh.drained());
  mesh.inject(0, 8, 128);
  EXPECT_FALSE(mesh.drained());
}

TEST(Mesh, RejectsInvalidInjection) {
  auto mesh = make_mesh();
  EXPECT_THROW(mesh.inject(99, 0, 128), std::invalid_argument);
  EXPECT_THROW(mesh.inject(0, 99, 128), std::invalid_argument);
  EXPECT_THROW(mesh.inject(0, 1, 0), std::invalid_argument);
}

TEST(Mesh, RectangularMeshWorks) {
  MeshConfig c;
  c.width = 4;
  c.height = 2;
  ElectricalMesh mesh(c, power::ElectricalTech{});
  mesh.inject(0, 7, 256);
  ASSERT_TRUE(mesh.run_until_drained(10'000));
  EXPECT_EQ(mesh.stats().packets_ejected, 1u);
}

TEST(Mesh, DeterministicAcrossRuns) {
  auto run_once = [] {
    auto mesh = make_mesh();
    for (NodeId s = 0; s < 9; ++s) {
      mesh.inject(s, static_cast<NodeId>((s + 4) % 9), 384);
    }
    mesh.run_until_drained(100'000);
    return mesh.stats().packet_latency_cycles.mean();
  };
  EXPECT_DOUBLE_EQ(run_once(), run_once());
}

/// Property: XY routing distributes every (src,dst) pair without loss on
/// varying mesh sizes.
class MeshSizeSweep : public ::testing::TestWithParam<int> {};

TEST_P(MeshSizeSweep, AllToAllDelivery) {
  MeshConfig c;
  c.width = static_cast<std::uint16_t>(GetParam());
  c.height = static_cast<std::uint16_t>(GetParam());
  ElectricalMesh mesh(c, power::ElectricalTech{});
  const auto n = static_cast<NodeId>(mesh.node_count());
  for (NodeId s = 0; s < n; ++s) {
    mesh.inject(s, static_cast<NodeId>(n - 1 - s), 256);
  }
  ASSERT_TRUE(mesh.run_until_drained(200'000));
  EXPECT_EQ(mesh.stats().packets_ejected, n);
}

INSTANTIATE_TEST_SUITE_P(Sizes, MeshSizeSweep, ::testing::Values(2, 3, 4, 5));

}  // namespace
}  // namespace optiplet::noc
