#include "noc/resipi_controller.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "util/units.hpp"

namespace optiplet::noc {
namespace {

using optiplet::units::Gbps;

ResipiController make_controller(ResipiConfig cfg = ResipiConfig{}) {
  return ResipiController(cfg, /*chiplets=*/8, /*gateways=*/4,
                          /*gateway_bw=*/192.0 * Gbps,
                          photonics::PcmCouplerDesign{});
}

TEST(Resipi, StartsAtMinimumGateways) {
  const auto c = make_controller();
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_EQ(c.active_gateways(i), 1u);
  }
  EXPECT_EQ(c.total_active_gateways(), 8u);
}

TEST(Resipi, RequiredGatewaysCoversDemand) {
  const auto c = make_controller();
  EXPECT_EQ(c.required_gateways(0.0), 1u);
  EXPECT_EQ(c.required_gateways(100.0 * Gbps), 1u);
  // 300 Gb/s at 85% target utilization needs 2 gateways (2 x 192 x .85).
  EXPECT_EQ(c.required_gateways(300.0 * Gbps), 2u);
  EXPECT_EQ(c.required_gateways(500.0 * Gbps), 4u);
  // Demand beyond capacity clamps at the per-chiplet maximum.
  EXPECT_EQ(c.required_gateways(10'000.0 * Gbps), 4u);
}

TEST(Resipi, UpshiftsImmediately) {
  auto c = make_controller();
  std::vector<double> demand(8, 0.0);
  demand[3] = 600.0 * Gbps;
  const std::size_t changes = c.observe_epoch(demand);
  EXPECT_EQ(c.active_gateways(3), 4u);
  EXPECT_EQ(changes, 3u);  // 1 -> 4
}

TEST(Resipi, HysteresisDelaysDownshift) {
  ResipiConfig cfg;
  cfg.downshift_utilization = 0.6;
  auto c = make_controller(cfg);
  std::vector<double> demand(8, 0.0);
  demand[0] = 600.0 * Gbps;
  c.observe_epoch(demand);
  ASSERT_EQ(c.active_gateways(0), 4u);
  // Demand drops to a level needing 3 gateways at 85% but utilization at 3
  // would be 0.7 > 0.6: hold at 4 (no thrash).
  demand[0] = 404.0 * Gbps;
  c.observe_epoch(demand);
  EXPECT_EQ(c.active_gateways(0), 4u);
  // Demand collapses: now the downshift goes through.
  demand[0] = 50.0 * Gbps;
  c.observe_epoch(demand);
  EXPECT_EQ(c.active_gateways(0), 1u);
}

TEST(Resipi, ReconfigurationCostsPcmEnergy) {
  auto c = make_controller();
  EXPECT_DOUBLE_EQ(c.reconfiguration_energy_j(), 0.0);
  std::vector<double> demand(8, 600.0 * Gbps);
  c.observe_epoch(demand);
  const double e = c.reconfiguration_energy_j();
  EXPECT_GT(e, 0.0);
  // 8 chiplets x 3 gateway activations x write energy.
  EXPECT_NEAR(e, 24.0 * photonics::PcmCouplerDesign{}.write_energy_j,
              1e-15);
  EXPECT_EQ(c.reconfiguration_count(), 24u);
}

TEST(Resipi, SteadyDemandCausesNoChurn) {
  auto c = make_controller();
  std::vector<double> demand(8, 300.0 * Gbps);
  c.observe_epoch(demand);
  const auto count = c.reconfiguration_count();
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(c.observe_epoch(demand), 0u);
  }
  EXPECT_EQ(c.reconfiguration_count(), count);
}

TEST(Resipi, PerChipletIndependence) {
  auto c = make_controller();
  std::vector<double> demand(8, 0.0);
  demand[1] = 700.0 * Gbps;
  demand[6] = 250.0 * Gbps;
  c.observe_epoch(demand);
  EXPECT_EQ(c.active_gateways(1), 4u);
  EXPECT_EQ(c.active_gateways(6), 2u);
  EXPECT_EQ(c.active_gateways(0), 1u);
}

TEST(Resipi, MinActiveGatewaysRespected) {
  ResipiConfig cfg;
  cfg.min_active_gateways = 2;
  auto c = ResipiController(cfg, 4, 4, 192.0 * Gbps,
                            photonics::PcmCouplerDesign{});
  std::vector<double> demand(4, 0.0);
  c.observe_epoch(demand);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(c.active_gateways(i), 2u);
  }
}

TEST(Resipi, RejectsInvalidConfiguration) {
  EXPECT_THROW(ResipiController(ResipiConfig{}, 0, 4, 192e9,
                                photonics::PcmCouplerDesign{}),
               std::invalid_argument);
  EXPECT_THROW(ResipiController(ResipiConfig{}, 8, 0, 192e9,
                                photonics::PcmCouplerDesign{}),
               std::invalid_argument);
  EXPECT_THROW(ResipiController(ResipiConfig{}, 8, 4, 0.0,
                                photonics::PcmCouplerDesign{}),
               std::invalid_argument);
  ResipiConfig bad;
  bad.min_active_gateways = 5;  // > gateways per chiplet
  EXPECT_THROW(ResipiController(bad, 8, 4, 192e9,
                                photonics::PcmCouplerDesign{}),
               std::invalid_argument);
  bad = ResipiConfig{};
  bad.target_utilization = 0.0;
  EXPECT_THROW(ResipiController(bad, 8, 4, 192e9,
                                photonics::PcmCouplerDesign{}),
               std::invalid_argument);
}

TEST(Resipi, RejectsMismatchedDemandVector) {
  auto c = make_controller();
  std::vector<double> demand(3, 0.0);
  EXPECT_THROW(c.observe_epoch(demand), std::invalid_argument);
}

/// Property: required gateways is monotone non-decreasing in demand.
class ResipiDemandSweep : public ::testing::TestWithParam<int> {};

TEST_P(ResipiDemandSweep, MonotoneInDemand) {
  const auto c = make_controller();
  const double d1 = GetParam() * 50.0 * Gbps;
  const double d2 = d1 + 50.0 * Gbps;
  EXPECT_LE(c.required_gateways(d1), c.required_gateways(d2));
}

INSTANTIATE_TEST_SUITE_P(DemandSteps, ResipiDemandSweep,
                         ::testing::Range(0, 16));

}  // namespace
}  // namespace optiplet::noc
