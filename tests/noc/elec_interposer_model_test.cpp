#include "noc/elec_interposer_model.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace optiplet::noc {
namespace {

ElecInterposerModel make_model(
    ElecInterposerModelConfig cfg = ElecInterposerModelConfig{}) {
  return ElecInterposerModel(cfg, power::ElectricalTech{});
}

TEST(ElecModel, PortBandwidthIsWidthTimesClock) {
  const auto m = make_model();
  EXPECT_NEAR(m.port_bandwidth_bps(), 128.0 * 2e9, 1.0);  // Table 1
}

TEST(ElecModel, EffectiveBandwidthBelowRaw) {
  const auto m = make_model();
  EXPECT_LT(m.effective_read_bandwidth_bps(), m.port_bandwidth_bps());
  EXPECT_GT(m.effective_read_bandwidth_bps(), 0.0);
}

TEST(ElecModel, RoundTripGrowsWithHops) {
  const auto m = make_model();
  EXPECT_GT(m.read_round_trip_s(4.0), m.read_round_trip_s(1.0));
  // 2 hops: ~2*(2+12)+4 = 32 cycles at 2 GHz = 16 ns.
  EXPECT_NEAR(m.read_round_trip_s(2.0), 16e-9, 1e-9);
}

TEST(ElecModel, ChipletReadBandwidthMshrLimited) {
  const auto m = make_model();
  // 1 outstanding 128-bit word per 16 ns RTT = 8 Gb/s (blocking reads).
  EXPECT_NEAR(m.chiplet_read_bandwidth_bps(2.0), 8e9, 0.5e9);
  // Far below the photonic gateway's 192 Gb/s: the paper's latency story.
  EXPECT_LT(m.chiplet_read_bandwidth_bps(2.0), 192e9 / 5.0);
}

TEST(ElecModel, LayerBandwidthScalesWithReadersUntilPortCap) {
  const auto m = make_model();
  const double one = m.layer_read_bandwidth_bps(1, 2.0);
  const double three = m.layer_read_bandwidth_bps(3, 2.0);
  EXPECT_NEAR(three, 3.0 * one, 1e6);
  // Many readers eventually hit the memory port limit.
  const double many = m.layer_read_bandwidth_bps(100, 2.0);
  EXPECT_NEAR(many, m.effective_read_bandwidth_bps(), 1.0);
}

TEST(ElecModel, TransferLatencyHasPipelineAndSerialization) {
  const auto m = make_model();
  const double small = m.transfer_latency_s(128, 2.0);
  const double large = m.transfer_latency_s(128 * 1000, 2.0);
  EXPECT_GT(large, small);
  // Zero-size-ish transfer still pays the hop pipeline.
  EXPECT_GT(small, 2.0 * 6.0 / 2e9 * 0.9);
}

TEST(ElecModel, TransferEnergyScalesWithBitsAndHops) {
  const auto m = make_model();
  EXPECT_NEAR(m.transfer_energy_j(2000, 2.0),
              2.0 * m.transfer_energy_j(1000, 2.0), 1e-18);
  EXPECT_GT(m.transfer_energy_j(1000, 4.0), m.transfer_energy_j(1000, 1.0));
}

TEST(ElecModel, StaticPowerCountsAllRouters) {
  const auto m = make_model();
  const power::ElectricalTech tech;
  EXPECT_NEAR(m.static_power_w(), 9.0 * tech.router_static_w, 1e-12);
}

TEST(ElecModel, RejectsInvalidConfig) {
  ElecInterposerModelConfig bad;
  bad.hotspot_efficiency = 0.0;
  EXPECT_THROW(make_model(bad), std::invalid_argument);
  bad = ElecInterposerModelConfig{};
  bad.hotspot_efficiency = 1.5;
  EXPECT_THROW(make_model(bad), std::invalid_argument);
  bad = ElecInterposerModelConfig{};
  bad.average_hops = 0.5;
  EXPECT_THROW(make_model(bad), std::invalid_argument);
  const auto m = make_model();
  EXPECT_THROW((void)m.layer_read_bandwidth_bps(0, 2.0), std::invalid_argument);
}

TEST(ElecModel, MoreOutstandingWordsMoreBandwidth) {
  ElecInterposerModelConfig few;
  few.outstanding_read_words = 1.0;
  ElecInterposerModelConfig many;
  many.outstanding_read_words = 8.0;
  EXPECT_GT(make_model(many).chiplet_read_bandwidth_bps(2.0),
            make_model(few).chiplet_read_bandwidth_bps(2.0));
}

}  // namespace
}  // namespace optiplet::noc
