#include "noc/photonic_gateway.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "photonics/wavelength.hpp"
#include "util/units.hpp"

namespace optiplet::noc {
namespace {

using optiplet::units::Gbps;

PhotonicGateway make_gateway(std::size_t wavelengths = 16,
                             std::size_t filter_rows = 1) {
  GatewayConfig cfg;
  cfg.wavelength_count = wavelengths;
  static const photonics::WdmGrid grid = photonics::make_cband_grid(64);
  return PhotonicGateway(cfg, power::PhotonicTech{}, grid, 0, 1, filter_rows);
}

TEST(Gateway, BandwidthIsWavelengthsTimesRate) {
  const auto gw = make_gateway(16);
  EXPECT_NEAR(gw.bandwidth_bps(), 16 * 12.0 * Gbps, 1.0);
}

TEST(Gateway, Table1GatewayIs192Gbps) {
  // 64 wavelengths / 4 gateways = 16 lambda x 12 Gb/s.
  const auto gw = make_gateway(16);
  EXPECT_NEAR(gw.bandwidth_bps(), 192e9, 1.0);
}

TEST(Gateway, SerializationTimeLinear) {
  const auto gw = make_gateway(16);
  const double t1 = gw.serialization_time_s(192'000);
  EXPECT_NEAR(t1, 1e-6, 1e-12);  // 192 kb at 192 Gb/s = 1 us
  EXPECT_NEAR(gw.serialization_time_s(384'000), 2.0 * t1, 1e-12);
}

TEST(Gateway, StoreForwardLatencySubMicrosecond) {
  const auto gw = make_gateway();
  EXPECT_GT(gw.store_forward_latency_s(), 0.0);
  EXPECT_LT(gw.store_forward_latency_s(), 1e-6);
}

TEST(Gateway, TransmitAndReceiveEnergyScaleWithBits) {
  const auto gw = make_gateway();
  EXPECT_DOUBLE_EQ(gw.transmit_energy_j(0), 0.0);
  EXPECT_NEAR(gw.transmit_energy_j(2000), 2.0 * gw.transmit_energy_j(1000),
              1e-18);
  EXPECT_NEAR(gw.receive_energy_j(2000), 2.0 * gw.receive_energy_j(1000),
              1e-18);
}

TEST(Gateway, EnergyPerBitInPicojouleClass) {
  const auto gw = make_gateway();
  const double epb =
      (gw.transmit_energy_j(1'000'000) + gw.receive_energy_j(1'000'000)) /
      1e6;
  EXPECT_GT(epb, 0.1e-12);
  EXPECT_LT(epb, 5e-12);
}

TEST(Gateway, StaticPowerIncludesRingsAndSerdes) {
  const auto gw = make_gateway();
  const power::PhotonicTech tech;
  EXPECT_GT(gw.active_static_power_w(), tech.gateway_static_w);
  EXPECT_NEAR(gw.active_static_power_w(),
              tech.gateway_static_w + gw.mrg().static_tuning_power_w(),
              1e-12);
}

TEST(Gateway, MemoryGatewayHasMoreRings) {
  const auto compute = make_gateway(16, 1);
  const auto memory = make_gateway(16, 32);
  EXPECT_GT(memory.mrg().ring_count(), compute.mrg().ring_count());
  EXPECT_GT(memory.active_static_power_w(),
            compute.active_static_power_w());
}

TEST(Gateway, RejectsRatesBeyondPhotodetector) {
  GatewayConfig cfg;
  cfg.wavelength_count = 4;
  cfg.data_rate_per_wavelength_bps = 100.0 * Gbps;  // > PD bandwidth
  const photonics::WdmGrid grid = photonics::make_cband_grid(16);
  EXPECT_THROW(
      PhotonicGateway(cfg, power::PhotonicTech{}, grid, 0, 1, 1),
      std::invalid_argument);
}

TEST(Gateway, RejectsZeroWavelengths) {
  GatewayConfig cfg;
  cfg.wavelength_count = 0;
  const photonics::WdmGrid grid = photonics::make_cband_grid(16);
  EXPECT_THROW(
      PhotonicGateway(cfg, power::PhotonicTech{}, grid, 0, 1, 1),
      std::invalid_argument);
}

}  // namespace
}  // namespace optiplet::noc
