#include "noc/traffic.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace optiplet::noc {
namespace {

ElectricalMesh make_mesh() {
  MeshConfig c;
  c.width = 3;
  c.height = 3;
  return ElectricalMesh(c, power::ElectricalTech{});
}

TEST(SyntheticTraffic, LowLoadLatencyNearZeroLoad) {
  auto mesh = make_mesh();
  SyntheticTrafficConfig cfg;
  cfg.pattern = TrafficPattern::kUniformRandom;
  cfg.injection_rate = 0.02;
  cfg.packet_bits = 512;
  SyntheticTrafficHarness harness(mesh, cfg);
  harness.run(2'000, 10'000);
  ASSERT_GT(harness.measured_packets(), 50u);
  // At 2% load the network is effectively unloaded: mean latency within
  // 2x of the maximum zero-load latency (4 hops).
  EXPECT_LT(harness.mean_latency_cycles(),
            2.0 * static_cast<double>(mesh.zero_load_latency_cycles(512, 4)));
}

TEST(SyntheticTraffic, LatencyRisesWithLoad) {
  double lat_low = 0.0;
  double lat_high = 0.0;
  {
    auto mesh = make_mesh();
    SyntheticTrafficConfig cfg;
    cfg.injection_rate = 0.05;
    SyntheticTrafficHarness h(mesh, cfg);
    h.run(2'000, 10'000);
    lat_low = h.mean_latency_cycles();
  }
  {
    auto mesh = make_mesh();
    SyntheticTrafficConfig cfg;
    cfg.injection_rate = 0.45;
    SyntheticTrafficHarness h(mesh, cfg);
    h.run(2'000, 10'000);
    lat_high = h.mean_latency_cycles();
  }
  EXPECT_GT(lat_high, lat_low);
}

TEST(SyntheticTraffic, ThroughputTracksOfferedLoadBelowSaturation) {
  auto mesh = make_mesh();
  SyntheticTrafficConfig cfg;
  cfg.injection_rate = 0.10;
  SyntheticTrafficHarness h(mesh, cfg);
  h.run(3'000, 20'000);
  EXPECT_NEAR(h.throughput_flits_per_node_cycle(), 0.10, 0.02);
}

TEST(SyntheticTraffic, HotspotReadsSaturateAtSourcePort) {
  // All traffic radiates from one node: delivered throughput is capped by
  // that node's injection port (1 flit/cycle across 9 nodes ~ 0.111).
  auto mesh = make_mesh();
  SyntheticTrafficConfig cfg;
  cfg.pattern = TrafficPattern::kHotspotReads;
  cfg.hotspot = 4;
  cfg.injection_rate = 0.9;  // far beyond what one port can source
  SyntheticTrafficHarness h(mesh, cfg);
  h.run(3'000, 20'000);
  EXPECT_LT(h.throughput_flits_per_node_cycle(), 0.125);
  EXPECT_GT(h.throughput_flits_per_node_cycle(), 0.08);
}

TEST(SyntheticTraffic, HotspotWritesConvergeOnSink) {
  auto mesh = make_mesh();
  SyntheticTrafficConfig cfg;
  cfg.pattern = TrafficPattern::kHotspotWrites;
  cfg.hotspot = 4;
  cfg.injection_rate = 0.5;
  SyntheticTrafficHarness h(mesh, cfg);
  h.run(3'000, 20'000);
  // Ejection at the sink caps at 1 flit/cycle -> <= 1/9 per node.
  EXPECT_LE(h.throughput_flits_per_node_cycle(), 0.125);
}

TEST(SyntheticTraffic, DeterministicForSeed) {
  auto run_once = [] {
    auto mesh = make_mesh();
    SyntheticTrafficConfig cfg;
    cfg.injection_rate = 0.2;
    cfg.seed = 1234;
    SyntheticTrafficHarness h(mesh, cfg);
    h.run(1'000, 5'000);
    return h.mean_latency_cycles();
  };
  EXPECT_DOUBLE_EQ(run_once(), run_once());
}

TEST(SyntheticTraffic, PatternsKeepTrafficInside) {
  for (auto pattern :
       {TrafficPattern::kTranspose, TrafficPattern::kBitComplement,
        TrafficPattern::kNearestNeighbour}) {
    auto mesh = make_mesh();
    SyntheticTrafficConfig cfg;
    cfg.pattern = pattern;
    cfg.injection_rate = 0.1;
    SyntheticTrafficHarness h(mesh, cfg);
    h.run(1'000, 5'000);
    EXPECT_GT(h.measured_packets(), 0u);
  }
}

TEST(SyntheticTraffic, RejectsInvalidConfig) {
  auto mesh = make_mesh();
  SyntheticTrafficConfig cfg;
  cfg.injection_rate = 0.0;
  EXPECT_THROW(SyntheticTrafficHarness(mesh, cfg), std::invalid_argument);
  cfg.injection_rate = 1.5;
  EXPECT_THROW(SyntheticTrafficHarness(mesh, cfg), std::invalid_argument);
  cfg = SyntheticTrafficConfig{};
  cfg.hotspot = 99;
  EXPECT_THROW(SyntheticTrafficHarness(mesh, cfg), std::invalid_argument);
}

}  // namespace
}  // namespace optiplet::noc
