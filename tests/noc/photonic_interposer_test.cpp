#include "noc/photonic_interposer.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "util/units.hpp"

namespace optiplet::noc {
namespace {

using optiplet::units::Gbps;

PhotonicInterposer make_interposer() {
  return PhotonicInterposer(PhotonicInterposerConfig{},
                            power::PhotonicTech{});
}

TEST(Interposer, Table1Bandwidths) {
  const auto ip = make_interposer();
  EXPECT_EQ(ip.wavelengths_per_gateway(), 16u);
  EXPECT_NEAR(ip.gateway_bandwidth_bps(), 192e9, 1.0);
  EXPECT_NEAR(ip.swmr_bandwidth_bps(64), 768e9, 1.0);  // 64 x 12 Gb/s
  EXPECT_NEAR(ip.swsr_bandwidth_bps(4), 768e9, 1.0);
}

TEST(Interposer, BandwidthScalesWithActivation) {
  const auto ip = make_interposer();
  EXPECT_NEAR(ip.swmr_bandwidth_bps(32), 0.5 * ip.swmr_bandwidth_bps(64),
              1.0);
  EXPECT_NEAR(ip.swsr_bandwidth_bps(2), 2.0 * ip.swsr_bandwidth_bps(1),
              1.0);
}

TEST(Interposer, TotalComputeGateways) {
  const auto ip = make_interposer();
  EXPECT_EQ(ip.total_compute_gateways(), 32u);  // 8 chiplets x 4
}

TEST(Interposer, TimeOfFlightIsNanoseconds) {
  const auto ip = make_interposer();
  // 150 mm of SOI waveguide: ~2 ns of flight time.
  EXPECT_GT(ip.time_of_flight_s(), 0.5e-9);
  EXPECT_LT(ip.time_of_flight_s(), 5e-9);
}

TEST(Interposer, TransferLatencyDominatedBySerialization) {
  const auto ip = make_interposer();
  const std::uint64_t bits = 10'000'000;  // 10 Mb
  const double t = ip.transfer_latency_s(bits, 768e9);
  EXPECT_NEAR(t, bits / 768e9, 0.5e-6);
  EXPECT_GT(t, bits / 768e9);  // store-forward + ToF add on top
}

TEST(Interposer, SwmrBudgetCoversExpectedLossTerms) {
  const auto ip = make_interposer();
  const auto& budget = ip.swmr_budget();
  // The broadcast path must include the 8-way split and the MRG pass-bys.
  EXPECT_GE(budget.elements().size(), 5u);
  EXPECT_GT(budget.total_loss_db(), 10.0);
  EXPECT_LT(budget.total_loss_db(), 40.0);
}

TEST(Interposer, SwsrCheaperThanSwmr) {
  const auto ip = make_interposer();
  // The point-to-point write path has no broadcast split: less loss, less
  // laser power per wavelength.
  EXPECT_LT(ip.swsr_budget().total_loss_db(),
            ip.swmr_budget().total_loss_db());
  EXPECT_LT(ip.swsr_laser_power_per_wavelength_w(),
            ip.swmr_laser_power_per_wavelength_w());
}

TEST(Interposer, LaserPowerScalesWithActivation) {
  const auto ip = make_interposer();
  const double full = ip.laser_electrical_power_w(64, 32);
  const double half = ip.laser_electrical_power_w(32, 16);
  const double min = ip.laser_electrical_power_w(1, 8);
  EXPECT_GT(full, half);
  EXPECT_GT(half, min);
}

TEST(Interposer, NetworkStaticPowerScalesWithGateways) {
  const auto ip = make_interposer();
  const double full = ip.network_static_power_w(64, 32);
  const double min = ip.network_static_power_w(1, 8);
  EXPECT_GT(full, min);
  // The ReSiPI dynamic range must be large enough to matter (>2x).
  EXPECT_GT(full, 2.0 * min);
}

TEST(Interposer, NetworkPowerInPlausibleRange) {
  const auto ip = make_interposer();
  const double full = ip.network_static_power_w(64, 32);
  EXPECT_GT(full, 5.0);    // a real photonic NoC is watts, not milliwatts
  EXPECT_LT(full, 60.0);   // and not hundreds of watts
}

TEST(Interposer, TransferEnergyScalesWithBits) {
  const auto ip = make_interposer();
  EXPECT_NEAR(ip.transfer_energy_j(2'000'000),
              2.0 * ip.transfer_energy_j(1'000'000), 1e-15);
}

TEST(Interposer, MemoryGatewayHasFilterRowPerComputeGateway) {
  const auto ip = make_interposer();
  // Fig. 6: MRGm = 1 modulator row + one filter row per compute gateway.
  EXPECT_EQ(ip.memory_gateway().mrg().ring_count(),
            (1u + 32u) * 64u);
}

TEST(Interposer, RejectsUnevenWavelengthSplit) {
  PhotonicInterposerConfig cfg;
  cfg.total_wavelengths = 62;  // not divisible by 4 gateways
  EXPECT_THROW(PhotonicInterposer(cfg, power::PhotonicTech{}),
               std::invalid_argument);
}

TEST(Interposer, RejectsOverActivation) {
  const auto ip = make_interposer();
  EXPECT_THROW((void)ip.swmr_bandwidth_bps(65), std::invalid_argument);
  EXPECT_THROW((void)ip.swsr_bandwidth_bps(5), std::invalid_argument);
  EXPECT_THROW((void)ip.laser_electrical_power_w(64, 33),
               std::invalid_argument);
}

TEST(Interposer, Table1DesignIsFeasible) {
  const auto ip = make_interposer();
  EXPECT_TRUE(ip.link_budget_feasible());
}

TEST(Interposer, WideRowsExceedFsrAndBecomeInfeasible) {
  // 128 wavelengths across 4 gateways = 32-channel rows spanning 25.6 nm,
  // beyond the ~13 nm ring FSR: rings alias onto foreign channels.
  PhotonicInterposerConfig cfg;
  cfg.total_wavelengths = 128;
  const PhotonicInterposer ip(cfg, power::PhotonicTech{});
  EXPECT_FALSE(ip.link_budget_feasible());
}

TEST(Interposer, WideGridFeasibleWithMoreGateways) {
  PhotonicInterposerConfig cfg;
  cfg.total_wavelengths = 128;
  cfg.gateways_per_chiplet = 8;  // 16-channel rows again
  const PhotonicInterposer ip(cfg, power::PhotonicTech{});
  EXPECT_TRUE(ip.link_budget_feasible());
}

/// Property: wavelength-count scaling (the §VII DSE axis) keeps per-gateway
/// bandwidth proportional.
class WavelengthSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(WavelengthSweep, GatewayBandwidthProportional) {
  PhotonicInterposerConfig cfg;
  cfg.total_wavelengths = GetParam();
  const PhotonicInterposer ip(cfg, power::PhotonicTech{});
  EXPECT_NEAR(ip.gateway_bandwidth_bps(),
              static_cast<double>(GetParam()) / 4.0 * 12.0 * Gbps, 1.0);
}

INSTANTIATE_TEST_SUITE_P(Counts, WavelengthSweep,
                         ::testing::Values(8, 16, 32, 64, 128));

}  // namespace
}  // namespace optiplet::noc
