#include "noc/router.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace optiplet::noc {
namespace {

Flit make_flit(NodeId dst, bool head = true, bool tail = true) {
  Flit f;
  f.dst = dst;
  f.head = head;
  f.tail = tail;
  return f;
}

TEST(Router, RoutesXBeforeY) {
  // 3x3 mesh, router 4 (center). Destination 2 (x=2,y=0): go East first.
  Router r(4, 3, 3, RouterConfig{});
  r.receive_flit(kLocal, 0, make_flit(2));
  std::vector<StagedFlit> flits;
  std::vector<StagedCredit> credits;
  r.tick(flits, credits);
  ASSERT_EQ(flits.size(), 1u);
  EXPECT_EQ(flits[0].out_port, kEast);
}

TEST(Router, EjectsAtDestination) {
  Router r(4, 3, 3, RouterConfig{});
  r.receive_flit(kNorth, 0, make_flit(4));
  std::vector<StagedFlit> flits;
  std::vector<StagedCredit> credits;
  r.tick(flits, credits);
  ASSERT_EQ(flits.size(), 1u);
  EXPECT_EQ(flits[0].out_port, kLocal);
}

TEST(Router, AllFourDirections) {
  struct Case {
    NodeId dst;
    std::uint8_t expected;
  };
  // From center (node 4) of a 3x3 mesh.
  for (const Case c : {Case{3, kWest}, Case{5, kEast}, Case{1, kNorth},
                       Case{7, kSouth}}) {
    Router r(4, 3, 3, RouterConfig{});
    r.receive_flit(kLocal, 0, make_flit(c.dst));
    std::vector<StagedFlit> flits;
    std::vector<StagedCredit> credits;
    r.tick(flits, credits);
    ASSERT_EQ(flits.size(), 1u);
    EXPECT_EQ(flits[0].out_port, c.expected) << "dst " << c.dst;
  }
}

TEST(Router, OneFlitPerOutputPerCycle) {
  Router r(4, 3, 3, RouterConfig{.vc_count = 2, .vc_depth = 4});
  // Two flits from different inputs, both heading East.
  r.receive_flit(kWest, 0, make_flit(5));
  r.receive_flit(kLocal, 0, make_flit(5));
  std::vector<StagedFlit> flits;
  std::vector<StagedCredit> credits;
  r.tick(flits, credits);
  EXPECT_EQ(flits.size(), 1u);  // arbitration grants one
  flits.clear();
  credits.clear();
  r.tick(flits, credits);
  EXPECT_EQ(flits.size(), 1u);  // the loser wins next cycle
}

TEST(Router, BlocksWithoutCredits) {
  RouterConfig cfg;
  cfg.vc_count = 1;
  cfg.vc_depth = 2;
  Router r(4, 3, 3, cfg);
  // Exhaust East credits: send 2 flits of a 3-flit packet without returning
  // credits.
  r.receive_flit(kLocal, 0, make_flit(5, true, false));
  r.receive_flit(kLocal, 0, make_flit(5, false, false));
  std::vector<StagedFlit> flits;
  std::vector<StagedCredit> credits;
  r.tick(flits, credits);
  r.tick(flits, credits);
  EXPECT_EQ(flits.size(), 2u);  // both credits consumed
  r.receive_flit(kLocal, 0, make_flit(5, false, true));
  flits.clear();
  r.tick(flits, credits);
  EXPECT_TRUE(flits.empty());  // stalled: no downstream space
  // Returning a credit unblocks the tail flit.
  r.receive_credit(kEast, 0);
  r.tick(flits, credits);
  EXPECT_EQ(flits.size(), 1u);
  EXPECT_TRUE(flits[0].flit.tail);
}

TEST(Router, WormholeKeepsPacketOnOneOutputVc) {
  Router r(4, 3, 3, RouterConfig{.vc_count = 2, .vc_depth = 8});
  r.receive_flit(kLocal, 0, make_flit(5, true, false));
  r.receive_flit(kLocal, 0, make_flit(5, false, false));
  r.receive_flit(kLocal, 0, make_flit(5, false, true));
  std::vector<StagedFlit> flits;
  std::vector<StagedCredit> credits;
  r.tick(flits, credits);
  r.tick(flits, credits);
  r.tick(flits, credits);
  ASSERT_EQ(flits.size(), 3u);
  EXPECT_EQ(flits[0].out_vc, flits[1].out_vc);
  EXPECT_EQ(flits[1].out_vc, flits[2].out_vc);
}

TEST(Router, TailFreesOutputVc) {
  RouterConfig cfg;
  cfg.vc_count = 1;
  cfg.vc_depth = 4;
  Router r(4, 3, 3, cfg);
  // Packet A occupies the single East VC; packet B on another input must
  // wait until A's tail passes.
  r.receive_flit(kWest, 0, make_flit(5, true, false));
  r.receive_flit(kLocal, 0, make_flit(5, true, true));  // packet B
  std::vector<StagedFlit> flits;
  std::vector<StagedCredit> credits;
  r.tick(flits, credits);
  ASSERT_EQ(flits.size(), 1u);  // A head
  EXPECT_FALSE(flits[0].flit.tail);
  flits.clear();
  r.tick(flits, credits);
  EXPECT_TRUE(flits.empty());  // B cannot allocate the busy VC; A starved
  r.receive_flit(kWest, 0, make_flit(5, false, true));  // A tail arrives
  r.tick(flits, credits);
  ASSERT_EQ(flits.size(), 1u);
  EXPECT_TRUE(flits[0].flit.tail);  // A completes
  flits.clear();
  r.tick(flits, credits);
  ASSERT_EQ(flits.size(), 1u);  // now B proceeds
}

TEST(Router, CreditsEmittedPerForwardedFlit) {
  Router r(4, 3, 3, RouterConfig{});
  r.receive_flit(kNorth, 1, make_flit(7));
  std::vector<StagedFlit> flits;
  std::vector<StagedCredit> credits;
  r.tick(flits, credits);
  ASSERT_EQ(credits.size(), 1u);
  EXPECT_EQ(credits[0].in_port, kNorth);
  EXPECT_EQ(credits[0].vc, 1u);
}

TEST(Router, BufferedFlitCount) {
  Router r(4, 3, 3, RouterConfig{});
  EXPECT_EQ(r.buffered_flits(), 0u);
  r.receive_flit(kNorth, 0, make_flit(7));
  r.receive_flit(kSouth, 0, make_flit(1));
  EXPECT_EQ(r.buffered_flits(), 2u);
}

TEST(Router, RejectsInvalidConfig) {
  EXPECT_THROW(Router(0, 3, 3, RouterConfig{.vc_count = 0, .vc_depth = 4}),
               std::invalid_argument);
  EXPECT_THROW(Router(0, 3, 3, RouterConfig{.vc_count = 1, .vc_depth = 0}),
               std::invalid_argument);
  EXPECT_THROW(Router(0, 0, 3, RouterConfig{}), std::invalid_argument);
}

}  // namespace
}  // namespace optiplet::noc
