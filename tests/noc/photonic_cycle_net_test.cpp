#include "noc/photonic_cycle_net.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/units.hpp"

namespace optiplet::noc {
namespace {

PhotonicCycleNetConfig pinned_config() {
  PhotonicCycleNetConfig cfg;
  cfg.resipi_enabled = false;  // all gateways lit: pure-medium behavior
  return cfg;
}

/// Expected zero-load latency [cycles] for one transfer serialized over
/// `channels` wavelengths: store-and-forward fill, grant turnaround, the
/// serialization itself, and photon time of flight.
std::uint64_t expected_zero_load_cycles(const PhotonicCycleNet& net,
                                        std::uint64_t bits,
                                        std::size_t channels) {
  const auto serialize = static_cast<std::uint64_t>(
      std::ceil(static_cast<double>(bits) /
                (static_cast<double>(channels) *
                 net.bits_per_cycle_per_channel())));
  return net.store_forward_cycles() + serialize + 1 +
         net.time_of_flight_cycles();
}

TEST(PhotonicCycleNet, ZeroLoadReadLatencyIsExact) {
  PhotonicCycleNet net(pinned_config(), power::PhotonicTech{});
  const std::uint64_t bits = 16'384;
  net.inject_read(0, bits);
  ASSERT_TRUE(net.run_until_drained(100'000));
  ASSERT_EQ(net.stats().reads_completed, 1u);
  // Full activation: the reader's 4x16-channel filter bank covers the whole
  // 64-wavelength medium.
  EXPECT_EQ(net.completed().front().done_cycle,
            expected_zero_load_cycles(net, bits, 64));
  EXPECT_EQ(net.stats().read_bits_delivered, bits);
}

TEST(PhotonicCycleNet, ZeroLoadWriteMatchesReadPath) {
  PhotonicCycleNet net(pinned_config(), power::PhotonicTech{});
  const std::uint64_t bits = 16'384;
  net.inject_write(3, bits);
  ASSERT_TRUE(net.run_until_drained(100'000));
  ASSERT_EQ(net.stats().writes_completed, 1u);
  EXPECT_EQ(net.completed().front().done_cycle,
            expected_zero_load_cycles(net, bits, 64));
}

TEST(PhotonicCycleNet, BroadcastDeliversOnceOverSharedMedium) {
  PhotonicCycleNet net(pinned_config(), power::PhotonicTech{});
  const std::uint64_t bits = 16'384;
  net.inject_broadcast({0, 1, 2}, bits);
  ASSERT_TRUE(net.run_until_drained(100'000));
  // One medium transfer, not one per reader: the SWMR bus carries the
  // payload once and every listed reader filter-drops it.
  EXPECT_EQ(net.stats().reads_completed, 1u);
  EXPECT_EQ(net.stats().read_bits_delivered, bits);
  EXPECT_EQ(net.completed().front().done_cycle,
            expected_zero_load_cycles(net, bits, 64));
}

TEST(PhotonicCycleNet, ReadsContendForTheMediumWritesDoNot) {
  // Two same-size reads to different chiplets share the 64-channel medium
  // FIFO-granted, so the second finishes roughly a serialization later;
  // two writes ride dedicated SWSR waveguides and finish together.
  const std::uint64_t bits = 16'384;
  PhotonicCycleNet reads(pinned_config(), power::PhotonicTech{});
  reads.inject_read(0, bits);
  reads.inject_read(1, bits);
  ASSERT_TRUE(reads.run_until_drained(100'000));
  ASSERT_EQ(reads.stats().reads_completed, 2u);
  const auto first = reads.completed()[0].done_cycle;
  const auto second = reads.completed()[1].done_cycle;
  EXPECT_GT(second, first);  // medium was occupied by the first grant

  PhotonicCycleNet writes(pinned_config(), power::PhotonicTech{});
  writes.inject_write(0, bits);
  writes.inject_write(1, bits);
  ASSERT_TRUE(writes.run_until_drained(100'000));
  ASSERT_EQ(writes.stats().writes_completed, 2u);
  EXPECT_EQ(writes.completed()[0].done_cycle,
            writes.completed()[1].done_cycle);
}

TEST(PhotonicCycleNet, SaturatedReadsApproachMediumBandwidth) {
  PhotonicCycleNet net(pinned_config(), power::PhotonicTech{});
  const std::uint64_t bits = 16'384;
  const std::size_t packets = 100;
  for (std::size_t i = 0; i < packets; ++i) {
    net.inject_read(i % net.chiplet_count(), bits);
  }
  ASSERT_TRUE(net.run_until_drained(1'000'000));
  const double medium_bits_per_cycle =
      64.0 * net.bits_per_cycle_per_channel();
  const double delivered_fraction =
      static_cast<double>(net.stats().read_bits_delivered) /
      (static_cast<double>(net.cycle()) * medium_bits_per_cycle);
  // Back-to-back transfers keep the medium busy outside the initial
  // store-and-forward fill and the per-grant turnaround cycles.
  EXPECT_GT(delivered_fraction, 0.9);
  EXPECT_LE(delivered_fraction, 1.0);
}

TEST(PhotonicCycleNet, EpochDrivenUpshiftHysteresisAndDownshift) {
  PhotonicCycleNetConfig cfg;
  cfg.resipi.epoch_s = 1.0 * units::us;  // 2000 gateway cycles
  power::PhotonicTech tech;
  tech.pcm.write_time_s = 50.0 * units::ns;  // short stalls for the test
  PhotonicCycleNet net(cfg, tech);
  const double gw_bw = 16.0 * net.bits_per_cycle_per_channel() *
                       net.clock_hz();  // one gateway, bits/s
  ASSERT_NEAR(gw_bw, 192e9, 1e6);

  // Epoch 1: demand worth 3 gateways (2.45x one gateway at 85% target).
  net.inject_read(0, 400'000);
  // Provisioning lag: the controller cannot react before the boundary.
  while (net.cycle() < net.epoch_cycles() - 1) {
    net.step();
  }
  EXPECT_EQ(net.controller().active_gateways(0), 1u);
  net.step();  // commits the first epoch boundary
  EXPECT_EQ(net.controller().active_gateways(0), 3u);
  EXPECT_EQ(net.controller().reconfiguration_count(), 2u);

  // Epoch 2: demand needs only 2 gateways but would run them at 78% —
  // above the 60% downshift threshold, so hysteresis holds at 3.
  net.inject_read(0, 300'000);
  while (net.cycle() < 2 * net.epoch_cycles()) {
    net.step();
  }
  EXPECT_EQ(net.controller().active_gateways(0), 3u);
  EXPECT_EQ(net.controller().reconfiguration_count(), 2u);

  // Epoch 3: demand at 52% of a single gateway — below the threshold, so
  // the boundary downshifts to the minimum.
  net.inject_read(0, 100'000);
  while (net.cycle() < 3 * net.epoch_cycles()) {
    net.step();
  }
  EXPECT_EQ(net.controller().active_gateways(0), 1u);
  EXPECT_EQ(net.controller().reconfiguration_count(), 4u);

  // The PCM writes darkened chiplet 0's gateways for the write latency.
  EXPECT_GT(net.stats().stall_cycles, 0u);
  ASSERT_TRUE(net.run_until_drained(1'000'000));
  EXPECT_EQ(net.stats().epochs, 3u);
}

TEST(PhotonicCycleNet, PcmStallPausesInFlightTraffic) {
  PhotonicCycleNetConfig cfg;
  cfg.resipi.epoch_s = 1.0 * units::us;
  PhotonicCycleNet with_stall(cfg, power::PhotonicTech{});  // 1 us PCM write
  power::PhotonicTech instant;
  instant.pcm.write_time_s = 0.0;
  PhotonicCycleNet no_stall(cfg, instant);
  // Demand large enough to upshift at the first boundary and still be
  // serializing when the PCM write lands.
  with_stall.inject_read(0, 400'000);
  no_stall.inject_read(0, 400'000);
  ASSERT_TRUE(with_stall.run_until_drained(1'000'000));
  ASSERT_TRUE(no_stall.run_until_drained(1'000'000));
  EXPECT_GT(with_stall.stats().stall_cycles, 0u);
  EXPECT_EQ(no_stall.stats().stall_cycles, 0u);
  EXPECT_GT(with_stall.completed().front().done_cycle,
            no_stall.completed().front().done_cycle);
}

TEST(PhotonicCycleNet, AdvanceIdleDownshiftsThroughEpochBoundaries) {
  PhotonicCycleNetConfig cfg;
  cfg.resipi.epoch_s = 1.0 * units::us;
  power::PhotonicTech tech;
  tech.pcm.write_time_s = 50.0 * units::ns;
  PhotonicCycleNet net(cfg, tech);
  // Epoch 1 upshifts to 3 gateways; epoch 2's demand keeps hysteresis
  // holding them. All traffic drains inside epoch 3.
  net.inject_read(0, 400'000);
  while (net.cycle() < net.epoch_cycles()) {
    net.step();
  }
  net.inject_read(0, 300'000);
  while (net.cycle() < 2 * net.epoch_cycles() + 800) {
    net.step();
  }
  ASSERT_TRUE(net.drained());
  ASSERT_EQ(net.controller().active_gateways(0), 3u);
  const std::uint64_t cycle_before = net.cycle();
  // Two fast-forwarded epochs: the boundary inside the window must fire
  // with zero demand and park the extra gateways.
  net.advance_idle(2 * net.epoch_cycles());
  EXPECT_EQ(net.cycle(), cycle_before + 2 * net.epoch_cycles());
  EXPECT_EQ(net.controller().active_gateways(0), 1u);
  EXPECT_GE(net.stats().epochs, 3u);
}

TEST(PhotonicCycleNet, DeterministicAcrossIdenticalRuns) {
  const auto run = [] {
    PhotonicCycleNetConfig cfg;
    cfg.resipi.epoch_s = 1.0 * units::us;
    PhotonicCycleNet net(cfg, power::PhotonicTech{});
    for (std::size_t i = 0; i < 32; ++i) {
      net.inject_read(i % net.chiplet_count(), 10'000 + 1'000 * i);
      net.inject_write((i + 3) % net.chiplet_count(), 5'000 + 500 * i);
    }
    EXPECT_TRUE(net.run_until_drained(1'000'000));
    return std::tuple{net.cycle(), net.stats().read_latency_cycles.mean(),
                      net.stats().write_latency_cycles.mean(),
                      net.controller().reconfiguration_count(),
                      net.gateway_cycle_weight()};
  };
  EXPECT_EQ(run(), run());
}

TEST(PhotonicCycleNet, GatewayWeightTracksActivation) {
  // Pinned mode: every cycle carries chiplets * gateways_per_chiplet.
  PhotonicCycleNet net(pinned_config(), power::PhotonicTech{});
  net.inject_read(0, 16'384);
  ASSERT_TRUE(net.run_until_drained(100'000));
  EXPECT_EQ(net.gateway_cycle_weight(), net.cycle() * 8u * 4u);
}

}  // namespace
}  // namespace optiplet::noc
