#include "noc/dnn_trace.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "dnn/zoo.hpp"

namespace optiplet::noc {
namespace {

dnn::LayerWork sample_layer() {
  // A ResNet50 3x3 conv layer, pulled from the real workload.
  const auto workload = dnn::compute_workload(dnn::zoo::make_resnet50(), 8);
  for (const auto& l : workload.layers) {
    if (l.kernel == 3) {
      return l;
    }
  }
  throw std::logic_error("no 3x3 layer");
}

TEST(DnnTrace, CoversWeightsInputsAndOutputs) {
  const auto layer = sample_layer();
  const MeshPlacement placement;
  const auto trace = build_layer_trace(layer, 3, placement, 64);
  ASSERT_FALSE(trace.empty());
  std::uint64_t to_compute = 0;
  std::uint64_t to_memory = 0;
  for (const auto& m : trace) {
    if (m.src == placement.memory_node) {
      to_compute += m.bits;
    } else {
      EXPECT_EQ(m.dst, placement.memory_node);
      to_memory += m.bits;
    }
  }
  // Reads ~ weights/64 + 3 input copies/64; writes ~ outputs/64.
  const double expected_reads =
      static_cast<double>(layer.weight_bits) / 64.0 +
      3.0 * static_cast<double>(layer.input_bits) / 64.0;
  EXPECT_NEAR(static_cast<double>(to_compute), expected_reads,
              0.02 * expected_reads + 8192);
  EXPECT_GT(to_memory, 0u);
}

TEST(DnnTrace, ChunksRespectMaxMessageBits) {
  const auto layer = sample_layer();
  const auto trace = build_layer_trace(layer, 3, MeshPlacement{}, 64, 2048);
  for (const auto& m : trace) {
    EXPECT_LE(m.bits, 2048u);
    EXPECT_GE(m.bits, 1u);
  }
}

TEST(DnnTrace, InputReplicationScalesWithChiplets) {
  const auto layer = sample_layer();
  const auto trace1 = build_layer_trace(layer, 1, MeshPlacement{}, 64);
  const auto trace3 = build_layer_trace(layer, 3, MeshPlacement{}, 64);
  std::uint64_t bits1 = 0;
  std::uint64_t bits3 = 0;
  for (const auto& m : trace1) {
    bits1 += m.bits;
  }
  for (const auto& m : trace3) {
    bits3 += m.bits;
  }
  // Three chiplets replicate inputs 3x (weights/outputs shard): more bits.
  EXPECT_GT(bits3, bits1);
}

TEST(DnnTrace, RejectsInvalidArguments) {
  const auto layer = sample_layer();
  EXPECT_THROW(build_layer_trace(layer, 0, MeshPlacement{}, 64),
               std::invalid_argument);
  EXPECT_THROW(build_layer_trace(layer, 9, MeshPlacement{}, 64),
               std::invalid_argument);
  EXPECT_THROW(build_layer_trace(layer, 3, MeshPlacement{}, 0),
               std::invalid_argument);
}

TEST(DnnTraceReplay, DeliversEverything) {
  const auto layer = sample_layer();
  const auto trace = build_layer_trace(layer, 3, MeshPlacement{}, 256);
  ElectricalMesh mesh(MeshConfig{}, power::ElectricalTech{});
  const auto result = replay_trace(mesh, trace);
  EXPECT_EQ(result.packets, trace.size());
  EXPECT_GT(result.cycles, 0u);
  EXPECT_GT(result.mean_packet_latency_cycles, 0.0);
}

TEST(DnnTraceReplay, DeliveredBandwidthBelowPortLimits) {
  // Reads stream out of the memory node's 128-bit port while writes stream
  // into it on the opposite channel: aggregate delivery is bounded by the
  // two directions combined (256 bits/cycle), with reads port-limited.
  const auto layer = sample_layer();
  const auto trace = build_layer_trace(layer, 3, MeshPlacement{}, 128);
  ElectricalMesh mesh(MeshConfig{}, power::ElectricalTech{});
  const auto result = replay_trace(mesh, trace);
  EXPECT_LT(result.delivered_bits_per_cycle, 257.0);
  // ...and the hotspot should still keep the port reasonably busy.
  EXPECT_GT(result.delivered_bits_per_cycle, 60.0);
}

TEST(DnnTraceReplay, MatchesTransactionModelWithinFactor) {
  // The grounding check at layer granularity: cycle-accurate replay time
  // vs the analytic hotspot-efficiency model, same volume.
  const auto layer = sample_layer();
  constexpr std::uint64_t kSubsample = 64;
  const auto trace = build_layer_trace(layer, 3, MeshPlacement{},
                                       kSubsample);
  ElectricalMesh mesh(MeshConfig{}, power::ElectricalTech{});
  const auto result = replay_trace(mesh, trace);

  std::uint64_t read_bits = 0;
  for (const auto& m : trace) {
    if (m.src == MeshPlacement{}.memory_node) {
      read_bits += m.bits;
    }
  }
  // Analytic: read volume / (port * hotspot_efficiency), in cycles — the
  // reads bound the replay (writes overlap on the reverse channels, and
  // the replay streams DMA-style, so use the streaming bound).
  const double analytic_cycles =
      static_cast<double>(read_bits) / (128.0 * 0.62);
  EXPECT_GT(static_cast<double>(result.cycles), 0.5 * analytic_cycles);
  EXPECT_LT(static_cast<double>(result.cycles), 2.0 * analytic_cycles);
}

TEST(DnnTraceReplay, RejectsEmptyTrace) {
  ElectricalMesh mesh(MeshConfig{}, power::ElectricalTech{});
  EXPECT_THROW(replay_trace(mesh, {}), std::invalid_argument);
}

}  // namespace
}  // namespace optiplet::noc
