#include "photonics/mzi.hpp"

#include <gtest/gtest.h>

#include <numbers>
#include <stdexcept>

#include "util/math.hpp"

namespace optiplet::photonics {
namespace {

constexpr double kPi = std::numbers::pi;

TEST(Mzi, ZeroPhaseRoutesToCross) {
  MachZehnderInterferometer mzi{MziDesign{}};
  mzi.set_phase(0.0);
  EXPECT_GT(mzi.cross_transmission(), 0.8);
  EXPECT_LT(mzi.bar_transmission(), 0.01);
}

TEST(Mzi, PiPhaseRoutesToBar) {
  MachZehnderInterferometer mzi{MziDesign{}};
  mzi.set_phase(kPi);
  EXPECT_GT(mzi.bar_transmission(), 0.8);
  EXPECT_LT(mzi.cross_transmission(), 0.01);
}

TEST(Mzi, HalfPiSplitsEvenly) {
  MachZehnderInterferometer mzi{MziDesign{}};
  mzi.set_phase(kPi / 2.0);
  EXPECT_NEAR(mzi.bar_transmission(), mzi.cross_transmission(), 1e-9);
}

TEST(Mzi, OutputsNeverExceedUnity) {
  MachZehnderInterferometer mzi{MziDesign{}};
  for (int i = 0; i <= 32; ++i) {
    mzi.set_phase(i * kPi / 16.0);
    const double total = mzi.bar_transmission() + mzi.cross_transmission();
    ASSERT_LE(total, 1.0);
    ASSERT_GE(mzi.bar_transmission(), 0.0);
    ASSERT_GE(mzi.cross_transmission(), 0.0);
  }
}

TEST(Mzi, ExtinctionRatioBoundsOffState) {
  MziDesign design;
  design.extinction_ratio_db = 20.0;
  MachZehnderInterferometer mzi{design};
  mzi.set_phase(0.0);
  // Off-port leakage floors at -20 dB of the pass transmission scale.
  EXPECT_GE(mzi.bar_transmission(),
            util::from_db(-20.0 - design.insertion_loss_db) * 0.99);
}

TEST(Mzi, ThermoOpticHoldPowerProportionalToPhase) {
  MziDesign design;
  design.shifter = PhaseShifterKind::kThermoOptic;
  design.to_p_pi_w = 20e-3;
  MachZehnderInterferometer mzi{design};
  mzi.set_phase(kPi);
  EXPECT_NEAR(mzi.static_power_w(), 20e-3, 1e-9);
  mzi.set_phase(kPi / 2.0);
  EXPECT_NEAR(mzi.static_power_w(), 10e-3, 1e-9);
  mzi.set_phase(0.0);
  EXPECT_DOUBLE_EQ(mzi.static_power_w(), 0.0);
}

TEST(Mzi, ElectroOpticHasNoStaticPowerButSwitchEnergy) {
  MziDesign design;
  design.shifter = PhaseShifterKind::kElectroOptic;
  MachZehnderInterferometer mzi{design};
  mzi.set_phase(0.0);
  EXPECT_DOUBLE_EQ(mzi.static_power_w(), 0.0);
  EXPECT_NEAR(mzi.switching_energy_j(kPi), design.eo_switch_energy_j, 1e-20);
  EXPECT_DOUBLE_EQ(mzi.switching_energy_j(0.0), 0.0);
}

TEST(Mzi, ElectroOpticPaysExcessLoss) {
  MziDesign eo;
  eo.shifter = PhaseShifterKind::kElectroOptic;
  MziDesign to;
  to.shifter = PhaseShifterKind::kThermoOptic;
  MachZehnderInterferometer m_eo{eo};
  MachZehnderInterferometer m_to{to};
  m_eo.set_phase(0.0);
  m_to.set_phase(0.0);
  EXPECT_LT(m_eo.cross_transmission(), m_to.cross_transmission());
}

TEST(Mzi, PhaseWrapsModulo2Pi) {
  MachZehnderInterferometer mzi{MziDesign{}};
  mzi.set_phase(2.0 * kPi + 0.3);
  EXPECT_NEAR(mzi.phase(), 0.3, 1e-12);
}

TEST(Mzi, RejectsInvalidDesign) {
  MziDesign bad;
  bad.insertion_loss_db = -1.0;
  EXPECT_THROW(MachZehnderInterferometer{bad}, std::invalid_argument);
  bad = MziDesign{};
  bad.to_p_pi_w = 0.0;
  EXPECT_THROW(MachZehnderInterferometer{bad}, std::invalid_argument);
  bad = MziDesign{};
  bad.extinction_ratio_db = 0.0;
  EXPECT_THROW(MachZehnderInterferometer{bad}, std::invalid_argument);
}

}  // namespace
}  // namespace optiplet::photonics
