#include "photonics/photodetector.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "util/math.hpp"
#include "util/units.hpp"

namespace optiplet::photonics {
namespace {

using optiplet::units::Gbps;

TEST(Photodetector, SensitivityAtReferenceRate) {
  const Photodetector pd{PhotodetectorDesign{}};
  EXPECT_NEAR(pd.sensitivity_dbm(10.0 * Gbps), -26.0, 1e-9);
}

TEST(Photodetector, SensitivityDegradesWithRate) {
  const Photodetector pd{PhotodetectorDesign{}};
  // One octave up costs the configured slope.
  EXPECT_NEAR(pd.sensitivity_dbm(20.0 * Gbps), -26.0 + 1.7, 1e-9);
  // Lower rates are easier to detect.
  EXPECT_LT(pd.sensitivity_dbm(5.0 * Gbps), -26.0);
}

TEST(Photodetector, SensitivityWattsMatchesDbm) {
  const Photodetector pd{PhotodetectorDesign{}};
  EXPECT_NEAR(pd.sensitivity_w(10.0 * Gbps),
              util::dbm_to_watts(-26.0), 1e-12);
}

TEST(Photodetector, PhotocurrentLinearInPower) {
  const Photodetector pd{PhotodetectorDesign{}};
  EXPECT_NEAR(pd.photocurrent_a(1e-3), 1.1e-3, 1e-9);
  EXPECT_NEAR(pd.photocurrent_a(2e-3), 2.2e-3, 1e-9);
  EXPECT_DOUBLE_EQ(pd.photocurrent_a(0.0), 0.0);
}

TEST(Photodetector, AccumulationSumsWavelengths) {
  // The analog MAC reduction: photocurrents of different wavelengths add.
  const Photodetector pd{PhotodetectorDesign{}};
  const std::vector<double> powers{1e-3, 2e-3, 3e-3};
  EXPECT_NEAR(pd.accumulate_a(powers), 1.1 * 6e-3, 1e-9);
}

TEST(Photodetector, AccumulationOfNothingIsZero) {
  const Photodetector pd{PhotodetectorDesign{}};
  EXPECT_DOUBLE_EQ(pd.accumulate_a({}), 0.0);
}

TEST(Photodetector, ReceiveEnergyScalesWithBits) {
  const Photodetector pd{PhotodetectorDesign{}};
  EXPECT_DOUBLE_EQ(pd.receive_energy_j(0), 0.0);
  EXPECT_NEAR(pd.receive_energy_j(1'000'000),
              1e6 * PhotodetectorDesign{}.receiver_energy_per_bit_j, 1e-15);
}

TEST(Photodetector, BandwidthGatesDataRate) {
  const Photodetector pd{PhotodetectorDesign{}};
  EXPECT_TRUE(pd.supports_rate(12.0 * Gbps));    // Table-1 rate
  EXPECT_TRUE(pd.supports_rate(40.0 * Gbps));
  EXPECT_FALSE(pd.supports_rate(100.0 * Gbps));  // beyond 30 GHz O/E BW
}

TEST(Photodetector, RejectsInvalidInputs) {
  const Photodetector pd{PhotodetectorDesign{}};
  EXPECT_THROW((void)pd.sensitivity_dbm(0.0), std::invalid_argument);
  EXPECT_THROW((void)pd.photocurrent_a(-1.0), std::invalid_argument);
  PhotodetectorDesign bad;
  bad.responsivity_a_per_w = 0.0;
  EXPECT_THROW(Photodetector{bad}, std::invalid_argument);
}

}  // namespace
}  // namespace optiplet::photonics
