#include "photonics/pcm_coupler.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include <stdexcept>

namespace optiplet::photonics {
namespace {

TEST(PcmCoupler, AmorphousRoutesToCross) {
  PcmCoupler pcm{PcmCouplerDesign{}};
  pcm.set_state(PcmState::kAmorphous);
  EXPECT_NEAR(pcm.cross_fraction(), 1.0, 1e-9);
  EXPECT_NEAR(pcm.bar_fraction(), 0.0, 1e-9);
}

TEST(PcmCoupler, CrystallineRoutesToBar) {
  PcmCoupler pcm{PcmCouplerDesign{}};
  pcm.set_state(PcmState::kCrystalline);
  EXPECT_NEAR(pcm.bar_fraction(), 1.0, 1e-9);
  EXPECT_NEAR(pcm.cross_fraction(), 0.0, 1e-9);
}

TEST(PcmCoupler, PartialStateSplitsPower) {
  PcmCoupler pcm{PcmCouplerDesign{}};
  pcm.set_state(PcmState::kPartiallyCrystalline);
  EXPECT_GT(pcm.cross_fraction(), 0.1);
  EXPECT_GT(pcm.bar_fraction(), 0.1);
  EXPECT_NEAR(pcm.cross_fraction() + pcm.bar_fraction(), 1.0, 1e-9);
}

TEST(PcmCoupler, FractionsConserveAcrossSweep) {
  PcmCoupler pcm{PcmCouplerDesign{}};
  for (int i = 0; i <= 10; ++i) {
    pcm.set_crystalline_fraction(i / 10.0);
    ASSERT_NEAR(pcm.cross_fraction() + pcm.bar_fraction(), 1.0, 1e-9);
  }
}

TEST(PcmCoupler, TransmissionIncludesInsertionLoss) {
  PcmCoupler pcm{PcmCouplerDesign{}};
  pcm.set_state(PcmState::kAmorphous);
  EXPECT_LT(pcm.cross_transmission(), pcm.cross_fraction());
  EXPECT_GT(pcm.cross_transmission(), 0.9);  // 0.15 dB loss
}

TEST(PcmCoupler, CrystallineLossierThanAmorphous) {
  PcmCoupler a{PcmCouplerDesign{}};
  PcmCoupler c{PcmCouplerDesign{}};
  a.set_state(PcmState::kAmorphous);
  c.set_state(PcmState::kCrystalline);
  // Compare pass-port transmissions against their lossless fractions.
  const double a_loss = a.cross_fraction() - a.cross_transmission();
  const double c_loss = c.bar_fraction() - c.bar_transmission();
  EXPECT_GT(c_loss, a_loss);
}

TEST(PcmCoupler, StateChangesCostWriteEnergy) {
  PcmCoupler pcm{PcmCouplerDesign{}};
  EXPECT_DOUBLE_EQ(pcm.total_write_energy_j(), 0.0);
  const double e1 = pcm.set_state(PcmState::kCrystalline);
  EXPECT_GT(e1, 0.0);
  EXPECT_EQ(pcm.write_count(), 1u);
  // Re-writing the same state is free (non-volatile hold).
  const double e2 = pcm.set_state(PcmState::kCrystalline);
  EXPECT_DOUBLE_EQ(e2, 0.0);
  EXPECT_EQ(pcm.write_count(), 1u);
}

TEST(PcmCoupler, HoldingStateCostsNothing) {
  PcmCoupler pcm{PcmCouplerDesign{}};
  pcm.set_state(PcmState::kPartiallyCrystalline);
  const double before = pcm.total_write_energy_j();
  // Reading transmission repeatedly must not consume energy.
  for (int i = 0; i < 100; ++i) {
    (void)pcm.cross_transmission();
  }
  EXPECT_DOUBLE_EQ(pcm.total_write_energy_j(), before);
}

TEST(PcmCoupler, NearestStateClassification) {
  PcmCoupler pcm{PcmCouplerDesign{}};
  pcm.set_crystalline_fraction(0.1);
  EXPECT_EQ(pcm.nearest_state(), PcmState::kAmorphous);
  pcm.set_crystalline_fraction(0.5);
  EXPECT_EQ(pcm.nearest_state(), PcmState::kPartiallyCrystalline);
  pcm.set_crystalline_fraction(0.9);
  EXPECT_EQ(pcm.nearest_state(), PcmState::kCrystalline);
}

TEST(PcmCoupler, RejectsOutOfRangeFraction) {
  PcmCoupler pcm{PcmCouplerDesign{}};
  EXPECT_THROW(pcm.set_crystalline_fraction(-0.1), std::invalid_argument);
  EXPECT_THROW(pcm.set_crystalline_fraction(1.1), std::invalid_argument);
}

TEST(PcmCoupler, RejectsInvalidDesign) {
  PcmCouplerDesign bad;
  bad.coupling_length_crystalline_m = bad.coupling_length_amorphous_m * 2.0;
  EXPECT_THROW(PcmCoupler{bad}, std::invalid_argument);
  bad = PcmCouplerDesign{};
  bad.device_length_m = 0.0;
  EXPECT_THROW(PcmCoupler{bad}, std::invalid_argument);
}

/// The coupled-mode transfer sin^2(pi*L/(2*Lc(chi))) is intentionally
/// non-monotone across the full chi range (the coupler over-couples and
/// power swings back); the ReSiPI controller only uses the three nominal
/// states. Two properties must hold: the transfer stays bounded and
/// continuous everywhere, and it is monotone on the crystalline approach
/// segment the write pulses traverse last (chi in [0.7, 1.0]).
class PcmSweep : public ::testing::TestWithParam<int> {};

TEST_P(PcmSweep, TransferBoundedAndContinuous) {
  PcmCoupler pcm{PcmCouplerDesign{}};
  const double chi = GetParam() / 10.0;
  pcm.set_crystalline_fraction(chi);
  const double at = pcm.cross_fraction();
  EXPECT_GE(at, 0.0);
  EXPECT_LE(at, 1.0);
  pcm.set_crystalline_fraction(std::min(1.0, chi + 0.001));
  EXPECT_NEAR(pcm.cross_fraction(), at, 0.05);  // no jumps
}

INSTANTIATE_TEST_SUITE_P(ChiSteps, PcmSweep, ::testing::Range(0, 10));

class PcmCrystallineApproach : public ::testing::TestWithParam<int> {};

TEST_P(PcmCrystallineApproach, CrossFractionMonotoneNearCrystalline) {
  PcmCoupler pcm{PcmCouplerDesign{}};
  const double chi_lo = 0.7 + GetParam() * 0.1;
  const double chi_hi = chi_lo + 0.1;
  pcm.set_crystalline_fraction(chi_lo);
  const double cross_lo = pcm.cross_fraction();
  pcm.set_crystalline_fraction(chi_hi);
  EXPECT_LE(pcm.cross_fraction(), cross_lo + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Steps, PcmCrystallineApproach,
                         ::testing::Range(0, 3));

}  // namespace
}  // namespace optiplet::photonics
