#include "photonics/microring.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "util/units.hpp"

namespace optiplet::photonics {
namespace {

using optiplet::units::nm;
using optiplet::units::um;

MicroringResonator make_default_ring(double resonance = 1550.0 * nm) {
  return MicroringResonator(MicroringDesign{}, MicroringTuning{}, resonance);
}

TEST(Microring, DropPeaksAtResonance) {
  const auto ring = make_default_ring();
  const double at_res = ring.drop_transmission(1550.0 * nm);
  const double off_res = ring.drop_transmission(1550.0 * nm + 2.0 * nm);
  EXPECT_GT(at_res, 0.5);          // strong drop at resonance
  EXPECT_LT(off_res, 0.05 * at_res);  // strong rejection off resonance
}

TEST(Microring, ThroughDipsAtResonance) {
  const auto ring = make_default_ring();
  const double at_res = ring.through_transmission(1550.0 * nm);
  const double off_res = ring.through_transmission(1550.0 * nm + 2.0 * nm);
  EXPECT_LT(at_res, 0.2);
  EXPECT_GT(off_res, 0.9);
}

TEST(Microring, EnergyConservation) {
  // Drop + through never exceeds unity anywhere in the band (passive).
  const auto ring = make_default_ring();
  for (int i = -200; i <= 200; ++i) {
    const double wl = 1550.0 * nm + i * 0.01 * nm;
    const double total =
        ring.drop_transmission(wl) + ring.through_transmission(wl);
    ASSERT_LE(total, 1.0 + 1e-9) << "at offset " << i;
    ASSERT_GE(total, 0.0);
  }
}

TEST(Microring, TransferIsPeriodicWithFsr) {
  const auto ring = make_default_ring();
  const double fsr = ring.fsr_m();
  const double d0 = ring.drop_transmission(1550.0 * nm);
  // Second-order dispersion shifts the neighbouring longitudinal mode by a
  // fraction of the linewidth; scan a +/-0.3 nm window around lambda+FSR
  // for the peak instead of sampling one point.
  double best = 0.0;
  for (int i = -300; i <= 300; ++i) {
    best = std::max(best, ring.drop_transmission(1550.0 * nm + fsr +
                                                 i * 0.001 * nm));
  }
  EXPECT_GT(best, 0.8 * d0);
}

TEST(Microring, FsrMatchesTextbookFormula) {
  const auto ring = make_default_ring();
  const double lambda = 1550.0 * nm;
  const double circumference =
      2.0 * 3.14159265358979 * MicroringDesign{}.radius_m;
  const double expected = lambda * lambda / (4.2 * circumference);
  EXPECT_NEAR(ring.fsr_m(), expected, 1e-4 * expected);
  // The default geometry must hold a 16-channel 0.8 nm sub-band per FSR.
  EXPECT_GT(ring.fsr_m(), 16 * 0.8 * nm);
}

TEST(Microring, SmallerRingLargerFsr) {
  MicroringDesign small;
  small.radius_m = 4.0 * um;
  MicroringDesign large;
  large.radius_m = 10.0 * um;
  const MicroringResonator r_small(small, MicroringTuning{}, 1550.0 * nm);
  const MicroringResonator r_large(large, MicroringTuning{}, 1550.0 * nm);
  EXPECT_GT(r_small.fsr_m(), r_large.fsr_m());
}

TEST(Microring, QualityFactorInDesignRange) {
  const auto ring = make_default_ring();
  // Add-drop filters for DWDM sit in the 5k-20k loaded-Q range.
  EXPECT_GT(ring.quality_factor(), 3'000.0);
  EXPECT_LT(ring.quality_factor(), 30'000.0);
}

TEST(Microring, WeakerCouplingRaisesQ) {
  MicroringDesign weak;
  weak.self_coupling_in = 0.995;
  weak.self_coupling_drop = 0.995;
  const MicroringResonator r_weak(weak, MicroringTuning{}, 1550.0 * nm);
  const auto r_ref = make_default_ring();
  EXPECT_GT(r_weak.quality_factor(), r_ref.quality_factor());
}

TEST(Microring, FwhmConsistentWithQ) {
  const auto ring = make_default_ring();
  EXPECT_NEAR(ring.quality_factor(), 1550.0 * nm / ring.fwhm_m(), 1e-6);
}

TEST(Microring, RetuneMovesResonance) {
  auto ring = make_default_ring();
  ring.retune(1551.0 * nm);
  EXPECT_DOUBLE_EQ(ring.resonance_m(), 1551.0 * nm);
  EXPECT_GT(ring.drop_transmission(1551.0 * nm), 0.5);
  EXPECT_LT(ring.drop_transmission(1550.0 * nm), 0.1);
}

TEST(Microring, TuningWithinEoRangeNeedsNoHeater) {
  auto ring = make_default_ring();
  const double base = ring.thermal_tuning_power_w();
  ring.retune(1550.0 * nm + 0.1 * nm);  // within the 0.2 nm EO range
  EXPECT_NEAR(ring.thermal_tuning_power_w(), base, 1e-12);
}

TEST(Microring, LargeShiftsDrawHeaterPower) {
  auto ring = make_default_ring();
  const double base = ring.thermal_tuning_power_w();
  ring.retune(1550.0 * nm + 1.0 * nm);
  const double shifted = ring.thermal_tuning_power_w();
  EXPECT_GT(shifted, base);
  // 0.8 nm of thermal shift at 0.25 nm/mW -> 3.2 mW.
  EXPECT_NEAR(shifted - base, 3.2e-3, 0.2e-3);
}

TEST(Microring, ModulationEnergyScalesWithBits) {
  const auto ring = make_default_ring();
  EXPECT_DOUBLE_EQ(ring.modulation_energy_j(0), 0.0);
  EXPECT_NEAR(ring.modulation_energy_j(1000),
              1000.0 * ring.tuning().eo_energy_per_bit_j, 1e-20);
}

TEST(Microring, RejectsInvalidDesigns) {
  MicroringTuning tuning;
  MicroringDesign bad;
  bad.self_coupling_in = 1.5;
  EXPECT_THROW(MicroringResonator(bad, tuning, 1550.0 * nm),
               std::invalid_argument);
  bad = MicroringDesign{};
  bad.radius_m = -1.0;
  EXPECT_THROW(MicroringResonator(bad, tuning, 1550.0 * nm),
               std::invalid_argument);
  bad = MicroringDesign{};
  bad.group_index = 1.0;  // below effective index
  EXPECT_THROW(MicroringResonator(bad, tuning, 1550.0 * nm),
               std::invalid_argument);
  EXPECT_THROW(MicroringResonator(MicroringDesign{}, tuning, -5.0),
               std::invalid_argument);
}

TEST(Microring, RejectsNonPositiveQueries) {
  const auto ring = make_default_ring();
  EXPECT_THROW((void)ring.drop_transmission(0.0), std::invalid_argument);
  EXPECT_THROW((void)ring.through_transmission(-1.0), std::invalid_argument);
}

TEST(Microdisk, MoreCompactButLossier) {
  const auto disk = make_microdisk(1550.0 * nm, MicroringTuning{});
  const auto ring = make_default_ring();
  // "More compact": ~3x smaller circumference, hence larger FSR.
  EXPECT_LT(disk.circumference_m(), ring.circumference_m());
  EXPECT_GT(disk.fsr_m(), ring.fsr_m());
  // "Higher operating loss": the design carries ~3x the intrinsic
  // waveguide loss (the drop-port *peak* can still be high because disks
  // are more strongly coupled; what degrades is Q and round-trip loss).
  EXPECT_GT(disk.design().ring_loss_db_per_m, ring.design().ring_loss_db_per_m);
  EXPECT_LT(disk.quality_factor(), ring.quality_factor());
}

/// Property sweep: the drop peak tracks the tuned resonance across the
/// C-band channel grid.
class MicroringChannelSweep : public ::testing::TestWithParam<int> {};

TEST_P(MicroringChannelSweep, DropPeakTracksChannel) {
  const double wl = 1530.0 * nm + GetParam() * 0.8 * nm;
  const MicroringResonator ring(MicroringDesign{}, MicroringTuning{}, wl);
  EXPECT_GT(ring.drop_transmission(wl), 0.5) << "channel " << GetParam();
  EXPECT_LT(ring.through_transmission(wl), 0.25);
}

INSTANTIATE_TEST_SUITE_P(CBandChannels, MicroringChannelSweep,
                         ::testing::Range(0, 64, 4));

/// Property sweep: off-resonance rejection improves monotonically with
/// spectral distance (Lorentzian tails).
class MicroringDetuneSweep : public ::testing::TestWithParam<int> {};

TEST_P(MicroringDetuneSweep, RejectionGrowsWithDetune) {
  const auto ring = make_default_ring();
  const double d1 = GetParam() * 0.2 * nm;
  const double d2 = d1 + 0.2 * nm;
  EXPECT_GE(ring.drop_transmission(1550.0 * nm + d1) + 1e-12,
            ring.drop_transmission(1550.0 * nm + d2));
}

INSTANTIATE_TEST_SUITE_P(DetuneSteps, MicroringDetuneSweep,
                         ::testing::Range(1, 10));

}  // namespace
}  // namespace optiplet::photonics
