#include "photonics/thermal.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "util/units.hpp"

namespace optiplet::photonics {
namespace {

using optiplet::units::pm;

TEST(Thermal, NoDriftAtCalibrationPoint) {
  const ThermalModel model;
  EXPECT_DOUBLE_EQ(thermal_drift_m(model, 300.0), 0.0);
}

TEST(Thermal, DriftLinearInTemperature) {
  const ThermalModel model;
  EXPECT_NEAR(thermal_drift_m(model, 310.0), 690.0 * pm, 1.0 * pm);
  EXPECT_NEAR(thermal_drift_m(model, 290.0), -690.0 * pm, 1.0 * pm);
}

TEST(Thermal, HoldPowerFreeWithinEoRange) {
  const ThermalModel model;
  const MicroringTuning tuning;  // 0.2 nm EO range
  // +-2 K drift (~140 pm) stays inside the EO range: driver power only.
  EXPECT_NEAR(hold_power_w(model, tuning, 302.0), tuning.driver_static_w,
              1e-9);
}

TEST(Thermal, HoldPowerGrowsBeyondEoRange) {
  const ThermalModel model;
  const MicroringTuning tuning;
  const double at_hot = hold_power_w(model, tuning, 320.0);  // ~1.38 nm
  EXPECT_GT(at_hot, tuning.driver_static_w);
  // 1.38 - 0.2 nm thermal at 0.25 nm/mW ~ 4.7 mW.
  EXPECT_NEAR(at_hot - tuning.driver_static_w, 4.72e-3, 0.3e-3);
}

TEST(Thermal, HoldPowerSymmetricInDriftSign) {
  const ThermalModel model;
  const MicroringTuning tuning;
  EXPECT_NEAR(hold_power_w(model, tuning, 320.0),
              hold_power_w(model, tuning, 280.0), 1e-9);
}

TEST(Thermal, BankPowerExceedsIsolatedSum) {
  // Thermal crosstalk makes an N-ring bank cost more than N isolated
  // rings — the CrossLight tuning-overhead argument.
  const ThermalModel model;
  const MicroringTuning tuning;
  const double isolated = 16.0 * hold_power_w(model, tuning, 320.0);
  const double bank = bank_hold_power_w(model, tuning, 320.0, 16);
  EXPECT_GT(bank, isolated);
  EXPECT_LT(bank, 2.5 * isolated);  // bounded feedback
}

TEST(Thermal, BankPowerScalesWithRingCount) {
  const ThermalModel model;
  const MicroringTuning tuning;
  EXPECT_NEAR(bank_hold_power_w(model, tuning, 310.0, 32),
              2.0 * bank_hold_power_w(model, tuning, 310.0, 16), 1e-9);
}

TEST(Thermal, NoCrosstalkMeansNoOverhead) {
  ThermalModel model;
  model.neighbour_coupling = 0.0;
  const MicroringTuning tuning;
  EXPECT_NEAR(bank_hold_power_w(model, tuning, 320.0, 8),
              8.0 * hold_power_w(model, tuning, 320.0), 1e-12);
}

TEST(Thermal, ChannelEscapeTemperature) {
  const ThermalModel model;
  // 0.8 nm / 69 pm/K ~ 11.6 K above calibration.
  EXPECT_NEAR(channel_escape_temperature_k(model), 311.6, 0.5);
}

TEST(Thermal, RejectsNonPhysicalInputs) {
  const ThermalModel model;
  const MicroringTuning tuning;
  EXPECT_THROW((void)thermal_drift_m(model, 0.0), std::invalid_argument);
  EXPECT_THROW((void)bank_hold_power_w(model, tuning, 310.0, 0),
               std::invalid_argument);
}

/// Property: hold power is monotone non-decreasing in |T - T_cal|.
class ThermalSweep : public ::testing::TestWithParam<int> {};

TEST_P(ThermalSweep, HoldPowerMonotoneInDrift) {
  const ThermalModel model;
  const MicroringTuning tuning;
  const double t1 = 300.0 + GetParam() * 2.0;
  const double t2 = t1 + 2.0;
  EXPECT_LE(hold_power_w(model, tuning, t1),
            hold_power_w(model, tuning, t2) + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(TemperatureSteps, ThermalSweep,
                         ::testing::Range(0, 15));

}  // namespace
}  // namespace optiplet::photonics
