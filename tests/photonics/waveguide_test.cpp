#include "photonics/waveguide.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "util/units.hpp"

namespace optiplet::photonics {
namespace {

using optiplet::units::c0;
using optiplet::units::cm;
using optiplet::units::mm;

TEST(Waveguide, StraightPropagationLoss) {
  const Waveguide wg(10.0 * cm, 0, 0, WaveguideTech{});
  // 30 dB/m * 0.1 m = 3 dB.
  EXPECT_NEAR(wg.insertion_loss_db(), 3.0, 1e-12);
}

TEST(Waveguide, BendAndCrossingLossesAdd) {
  WaveguideTech tech;
  const Waveguide wg(0.0, 10, 4, tech);
  EXPECT_NEAR(wg.insertion_loss_db(),
              10 * tech.bend_loss_db + 4 * tech.crossing_loss_db, 1e-12);
}

TEST(Waveguide, ZeroLengthZeroLoss) {
  const Waveguide wg(0.0, 0, 0, WaveguideTech{});
  EXPECT_DOUBLE_EQ(wg.insertion_loss_db(), 0.0);
  EXPECT_DOUBLE_EQ(wg.time_of_flight_s(), 0.0);
}

TEST(Waveguide, TimeOfFlightUsesGroupIndex) {
  WaveguideTech tech;
  tech.group_index = 4.2;
  const Waveguide wg(10.0 * mm, 0, 0, tech);
  EXPECT_NEAR(wg.time_of_flight_s(), 0.01 * 4.2 / c0, 1e-18);
  // Sanity: ~140 ps over 1 cm of SOI.
  EXPECT_NEAR(wg.time_of_flight_s(), 140e-12, 10e-12);
}

TEST(Waveguide, LossScalesLinearlyWithLength) {
  const Waveguide a(1.0 * cm, 0, 0, WaveguideTech{});
  const Waveguide b(2.0 * cm, 0, 0, WaveguideTech{});
  EXPECT_NEAR(b.insertion_loss_db(), 2.0 * a.insertion_loss_db(), 1e-12);
}

TEST(Waveguide, RejectsInvalidInputs) {
  EXPECT_THROW(Waveguide(-1.0, 0, 0, WaveguideTech{}), std::invalid_argument);
  WaveguideTech bad;
  bad.propagation_loss_db_per_m = -1.0;
  EXPECT_THROW(Waveguide(1.0, 0, 0, bad), std::invalid_argument);
  bad = WaveguideTech{};
  bad.group_index = 0.5;
  EXPECT_THROW(Waveguide(1.0, 0, 0, bad), std::invalid_argument);
}

TEST(Waveguide, AccessorsReflectConstruction) {
  const Waveguide wg(5.0 * mm, 3, 2, WaveguideTech{});
  EXPECT_DOUBLE_EQ(wg.length_m(), 5.0 * mm);
  EXPECT_EQ(wg.bend_count(), 3u);
  EXPECT_EQ(wg.crossing_count(), 2u);
}

}  // namespace
}  // namespace optiplet::photonics
