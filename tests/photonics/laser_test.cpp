#include "photonics/laser.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "util/math.hpp"
#include "util/units.hpp"

namespace optiplet::photonics {
namespace {

using optiplet::units::mW;

TEST(Laser, StartsDark) {
  const LaserSource laser{LaserDesign{}, 8};
  EXPECT_EQ(laser.active_channel_count(), 0u);
  EXPECT_DOUBLE_EQ(laser.total_optical_power_w(), 0.0);
  EXPECT_DOUBLE_EQ(laser.electrical_power_w(), 0.0);
}

TEST(Laser, ChannelPowersAccumulate) {
  LaserSource laser{LaserDesign{}, 4};
  laser.set_channel_power_w(0, 1.0 * mW);
  laser.set_channel_power_w(2, 2.0 * mW);
  EXPECT_EQ(laser.active_channel_count(), 2u);
  EXPECT_NEAR(laser.total_optical_power_w(), 3.0 * mW, 1e-12);
}

TEST(Laser, ElectricalPowerIncludesCouplingEfficiencyAndTec) {
  LaserDesign design;
  design.wall_plug_efficiency = 0.1;
  design.tec_overhead_factor = 2.0;
  design.coupling_loss_db = 3.0103;  // x2 source power for delivered power
  design.bias_overhead_w = 0.0;
  LaserSource laser{design, 1};
  laser.set_channel_power_w(0, 1.0 * mW);
  // delivered 1 mW -> source 2 mW -> electrical 20 mW -> TEC x2 = 40 mW.
  EXPECT_NEAR(laser.electrical_power_w(), 40.0 * mW, 0.1 * mW);
}

TEST(Laser, BiasOverheadOnlyWhenLit) {
  LaserDesign design;
  design.bias_overhead_w = 50.0 * mW;
  LaserSource laser{design, 2};
  EXPECT_DOUBLE_EQ(laser.electrical_power_w(), 0.0);
  laser.set_channel_power_w(0, 1.0 * mW);
  EXPECT_GT(laser.electrical_power_w(), 50.0 * mW);
  laser.set_channel_power_w(0, 0.0);
  EXPECT_DOUBLE_EQ(laser.electrical_power_w(), 0.0);
}

TEST(Laser, DisablingChannelsSavesPower) {
  // The PROWAVES mechanism: fewer lit wavelengths, less wall-plug power.
  LaserSource laser{LaserDesign{}, 8};
  for (std::size_t i = 0; i < 8; ++i) {
    laser.set_channel_power_w(i, 1.0 * mW);
  }
  const double full = laser.electrical_power_w();
  for (std::size_t i = 4; i < 8; ++i) {
    laser.set_channel_power_w(i, 0.0);
  }
  EXPECT_LT(laser.electrical_power_w(), full);
  EXPECT_EQ(laser.active_channel_count(), 4u);
}

TEST(Laser, OnChipVcselSkipsCouplingLoss) {
  LaserDesign off;
  off.kind = LaserKind::kOffChipCombBank;
  off.bias_overhead_w = 0.0;
  LaserDesign on = off;
  on.kind = LaserKind::kOnChipVcselArray;
  LaserSource l_off{off, 1};
  LaserSource l_on{on, 1};
  l_off.set_channel_power_w(0, 1.0 * mW);
  l_on.set_channel_power_w(0, 1.0 * mW);
  EXPECT_GT(l_off.electrical_power_w(), l_on.electrical_power_w());
}

TEST(Laser, EnforcesChannelPowerCapability) {
  LaserDesign design;
  design.max_power_per_channel_w = 10.0 * mW;
  LaserSource laser{design, 1};
  EXPECT_THROW(laser.set_channel_power_w(0, 20.0 * mW),
               std::invalid_argument);
}

TEST(Laser, RejectsInvalidUse) {
  LaserSource laser{LaserDesign{}, 2};
  EXPECT_THROW(laser.set_channel_power_w(2, 1.0 * mW),
               std::invalid_argument);
  EXPECT_THROW(laser.set_channel_power_w(0, -1.0), std::invalid_argument);
  EXPECT_THROW((void)laser.channel_power_w(5), std::invalid_argument);
  EXPECT_THROW(LaserSource(LaserDesign{}, 0), std::invalid_argument);
  LaserDesign bad;
  bad.wall_plug_efficiency = 0.0;
  EXPECT_THROW(LaserSource(bad, 1), std::invalid_argument);
}

}  // namespace
}  // namespace optiplet::photonics
