#include "photonics/link_budget.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "util/math.hpp"
#include "util/units.hpp"

namespace optiplet::photonics {
namespace {

using optiplet::units::nm;

TEST(LinkBudget, LossesAccumulate) {
  LinkBudget budget;
  budget.add_loss("coupler", 1.5);
  budget.add_loss("waveguide", 2.5);
  budget.add_loss("drop", 0.7);
  EXPECT_NEAR(budget.total_loss_db(), 4.7, 1e-12);
  EXPECT_EQ(budget.elements().size(), 3u);
}

TEST(LinkBudget, EmptyBudgetIsLossless) {
  LinkBudget budget;
  EXPECT_DOUBLE_EQ(budget.total_loss_db(), 0.0);
}

TEST(LinkBudget, RejectsNegativeLoss) {
  LinkBudget budget;
  EXPECT_THROW(budget.add_loss("gain?", -1.0), std::invalid_argument);
}

TEST(LinkBudget, RequiredLaserPowerFormula) {
  LinkBudget budget;
  budget.add_loss("path", 20.0);
  // sensitivity -26 dBm + 20 dB loss + 1 dB XT + 3 dB margin = -2 dBm.
  EXPECT_NEAR(budget.required_laser_power_dbm(-26.0, 1.0, 3.0), -2.0, 1e-12);
  EXPECT_NEAR(budget.required_laser_power_w(-26.0, 1.0, 3.0),
              util::dbm_to_watts(-2.0), 1e-12);
}

TEST(LinkBudget, MoreLossNeedsMorePower) {
  LinkBudget small;
  small.add_loss("path", 10.0);
  LinkBudget big;
  big.add_loss("path", 20.0);
  EXPECT_GT(big.required_laser_power_w(-26.0, 0.0, 3.0),
            small.required_laser_power_w(-26.0, 0.0, 3.0));
}

TEST(LinkBudget, RejectsNegativePenaltyOrMargin) {
  LinkBudget budget;
  EXPECT_THROW((void)budget.required_laser_power_dbm(-26.0, -1.0, 3.0),
               std::invalid_argument);
  EXPECT_THROW((void)budget.required_laser_power_dbm(-26.0, 0.0, -3.0),
               std::invalid_argument);
}

TEST(LinkBudget, CrosstalkZeroForSingleChannel) {
  const MicroringResonator filter(MicroringDesign{}, MicroringTuning{},
                                  1550.0 * nm);
  const WdmGrid grid = make_cband_grid(16);
  EXPECT_DOUBLE_EQ(
      LinkBudget::crosstalk_penalty_db(filter, grid, 8, 1), 0.0);
}

TEST(LinkBudget, CrosstalkGrowsWithActiveChannels) {
  const WdmGrid grid = make_cband_grid(16);
  const MicroringResonator filter(MicroringDesign{}, MicroringTuning{},
                                  grid.wavelength_m(8));
  const double xt4 = LinkBudget::crosstalk_penalty_db(filter, grid, 8, 4);
  const double xt16 = LinkBudget::crosstalk_penalty_db(filter, grid, 8, 16);
  EXPECT_GE(xt16, xt4);
  EXPECT_GT(xt16, 0.0);
}

TEST(LinkBudget, CrosstalkSmallForHighQFilters) {
  // The default ring's Q ~ 9000 keeps DWDM crosstalk well under 1 dB.
  const WdmGrid grid = make_cband_grid(16);
  const MicroringResonator filter(MicroringDesign{}, MicroringTuning{},
                                  grid.wavelength_m(8));
  const double xt = LinkBudget::crosstalk_penalty_db(filter, grid, 8, 16);
  EXPECT_LT(xt, 1.0);
}

TEST(LinkBudget, CrosstalkWorseForLowQFilters) {
  const WdmGrid grid = make_cband_grid(16);
  MicroringDesign low_q;
  low_q.self_coupling_in = 0.90;   // stronger coupling -> broader line
  low_q.self_coupling_drop = 0.90;
  const MicroringResonator broad(low_q, MicroringTuning{},
                                 grid.wavelength_m(8));
  const MicroringResonator sharp(MicroringDesign{}, MicroringTuning{},
                                 grid.wavelength_m(8));
  EXPECT_GT(LinkBudget::crosstalk_penalty_db(broad, grid, 8, 16),
            LinkBudget::crosstalk_penalty_db(sharp, grid, 8, 16));
}

TEST(LinkBudget, CrosstalkValidatesArguments) {
  const WdmGrid grid = make_cband_grid(8);
  const MicroringResonator filter(MicroringDesign{}, MicroringTuning{},
                                  grid.wavelength_m(0));
  EXPECT_THROW((void)LinkBudget::crosstalk_penalty_db(filter, grid, 9, 4),
               std::invalid_argument);
  EXPECT_THROW((void)LinkBudget::crosstalk_penalty_db(filter, grid, 0, 9),
               std::invalid_argument);
}

}  // namespace
}  // namespace optiplet::photonics
