#include "photonics/wavelength.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "util/units.hpp"

namespace optiplet::photonics {
namespace {

using optiplet::units::nm;

TEST(WdmGrid, ChannelCountAndSpacing) {
  const WdmGrid grid = make_cband_grid(64);
  EXPECT_EQ(grid.channel_count(), 64u);
  EXPECT_NEAR(grid.channel_spacing_m(), 0.8 * nm, 1e-15);
}

TEST(WdmGrid, ChannelsAscendUniformly) {
  const WdmGrid grid = make_cband_grid(16);
  for (std::size_t i = 1; i < grid.channel_count(); ++i) {
    EXPECT_NEAR(grid.wavelength_m(i) - grid.wavelength_m(i - 1), 0.8 * nm,
                1e-15);
  }
}

TEST(WdmGrid, GridIsCentered) {
  const WdmGrid grid = make_cband_grid(65);  // odd count: exact center
  EXPECT_NEAR(grid.wavelength_m(32), 1550.0 * nm, 1e-15);
}

TEST(WdmGrid, BandSpanMatchesChannelCount) {
  const WdmGrid grid = make_cband_grid(64);
  EXPECT_NEAR(grid.band_span_m(), 63 * 0.8 * nm, 1e-15);
}

TEST(WdmGrid, SingleChannelGrid) {
  const WdmGrid grid = make_cband_grid(1);
  EXPECT_EQ(grid.channel_count(), 1u);
  EXPECT_NEAR(grid.wavelength_m(0), 1550.0 * nm, 1e-15);
  EXPECT_DOUBLE_EQ(grid.band_span_m(), 0.0);
}

TEST(WdmGrid, NearestChannelExactHit) {
  const WdmGrid grid = make_cband_grid(8);
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_EQ(grid.nearest_channel(grid.wavelength_m(i)), i);
  }
}

TEST(WdmGrid, NearestChannelMidpointsAndEdges) {
  const WdmGrid grid = make_cband_grid(8);
  // Just below channel 0 and above channel 7 clamp to the edges.
  EXPECT_EQ(grid.nearest_channel(grid.wavelength_m(0) - 5.0 * nm), 0u);
  EXPECT_EQ(grid.nearest_channel(grid.wavelength_m(7) + 5.0 * nm), 7u);
  // 0.3 nm above channel 2 is still nearest to channel 2.
  EXPECT_EQ(grid.nearest_channel(grid.wavelength_m(2) + 0.3 * nm), 2u);
  // 0.5 nm above channel 2 is nearer to channel 3.
  EXPECT_EQ(grid.nearest_channel(grid.wavelength_m(2) + 0.5 * nm), 3u);
}

TEST(WdmGrid, RejectsInvalidConstruction) {
  EXPECT_THROW(WdmGrid(0, 1550.0 * nm, 0.8 * nm), std::invalid_argument);
  EXPECT_THROW(WdmGrid(8, -1.0, 0.8 * nm), std::invalid_argument);
  EXPECT_THROW(WdmGrid(8, 1550.0 * nm, 0.0), std::invalid_argument);
  EXPECT_THROW(WdmGrid(8, 1550.0 * nm, -0.8 * nm), std::invalid_argument);
}

TEST(WdmGrid, RejectsOutOfRangeChannel) {
  const WdmGrid grid = make_cband_grid(4);
  EXPECT_THROW((void)grid.wavelength_m(4), std::invalid_argument);
}

/// Table-1 context: 64 channels at 0.8 nm fit comfortably inside one FSR of
/// the default ring design (no aliasing between channels).
TEST(WdmGrid, GridFitsInsideRingFsr) {
  const WdmGrid grid = make_cband_grid(64);
  // Default ring FSR ~ 13 nm < span 50.4 nm: a 7 um ring cannot serve the
  // full 64-channel grid alone — which is exactly why gateways are assigned
  // 16-channel sub-bands (64/4 gateways, DESIGN.md §9).
  const WdmGrid subband = make_cband_grid(16);
  EXPECT_LT(subband.band_span_m(), 13.0 * nm);
  EXPECT_GT(grid.band_span_m(), 13.0 * nm);
}

}  // namespace
}  // namespace optiplet::photonics
