#include "photonics/microring_group.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "util/units.hpp"

namespace optiplet::photonics {
namespace {

MicroringGroupConfig compute_mrg_config() {
  MicroringGroupConfig c;
  c.wavelengths_per_row = 16;
  c.modulator_rows = 1;
  c.filter_rows = 1;
  return c;
}

TEST(MicroringGroup, RingCountsMatchRows) {
  const WdmGrid grid = make_cband_grid(64);
  const MicroringGroup mrg(compute_mrg_config(), grid, 0);
  EXPECT_EQ(mrg.ring_count(), 32u);
  EXPECT_EQ(mrg.modulator_count(), 16u);
  EXPECT_EQ(mrg.filter_count(), 16u);
}

TEST(MicroringGroup, MemoryMrgHasFilterRowPerComputeGateway) {
  // Fig. 6: MRGm holds one filter row per compute gateway.
  const WdmGrid grid = make_cband_grid(64);
  MicroringGroupConfig c;
  c.wavelengths_per_row = 64;
  c.modulator_rows = 1;
  c.filter_rows = 32;  // 8 chiplets x 4 gateways
  const MicroringGroup mrg(c, grid, 0);
  EXPECT_EQ(mrg.ring_count(), 33u * 64u);
}

TEST(MicroringGroup, StaticTuningPowerScalesWithRings) {
  const WdmGrid grid = make_cband_grid(64);
  MicroringGroupConfig small = compute_mrg_config();
  MicroringGroupConfig big = compute_mrg_config();
  big.filter_rows = 8;
  const MicroringGroup m_small(small, grid, 0);
  const MicroringGroup m_big(big, grid, 0);
  EXPECT_GT(m_big.static_tuning_power_w(), m_small.static_tuning_power_w());
  // Per-ring power identical: totals proportional to ring counts.
  EXPECT_NEAR(m_big.static_tuning_power_w() / m_big.ring_count(),
              m_small.static_tuning_power_w() / m_small.ring_count(), 1e-12);
}

TEST(MicroringGroup, PerRingTuningPowerInMilliwattClass) {
  const WdmGrid grid = make_cband_grid(64);
  const MicroringGroup mrg(compute_mrg_config(), grid, 0);
  const double per_ring =
      mrg.static_tuning_power_w() / static_cast<double>(mrg.ring_count());
  EXPECT_GT(per_ring, 0.1e-3);
  EXPECT_LT(per_ring, 5e-3);
}

TEST(MicroringGroup, ModulationEnergyScalesWithBits) {
  const WdmGrid grid = make_cband_grid(64);
  const MicroringGroup mrg(compute_mrg_config(), grid, 0);
  EXPECT_DOUBLE_EQ(mrg.modulation_energy_j(0), 0.0);
  EXPECT_GT(mrg.modulation_energy_j(1000), 0.0);
  EXPECT_NEAR(mrg.modulation_energy_j(2000),
              2.0 * mrg.modulation_energy_j(1000), 1e-18);
}

TEST(MicroringGroup, AreaProportionalToRings) {
  const WdmGrid grid = make_cband_grid(64);
  const MicroringGroup mrg(compute_mrg_config(), grid, 0);
  EXPECT_NEAR(mrg.area_m2(),
              32.0 * compute_mrg_config().area_per_ring_m2, 1e-15);
}

TEST(MicroringGroup, ThroughLossSmallButPositive) {
  const WdmGrid grid = make_cband_grid(64);
  const MicroringGroup mrg(compute_mrg_config(), grid, 0);
  const double loss = mrg.through_loss_db();
  EXPECT_GT(loss, 0.0);
  EXPECT_LT(loss, 1.0);  // a single MRG row must not eat the budget
}

TEST(MicroringGroup, DropLossIsModest) {
  const WdmGrid grid = make_cband_grid(64);
  const MicroringGroup mrg(compute_mrg_config(), grid, 0);
  EXPECT_GT(mrg.drop_loss_db(), 0.0);
  EXPECT_LT(mrg.drop_loss_db(), 3.0);
}

TEST(MicroringGroup, ChannelOffsetSelectsSubBand) {
  const WdmGrid grid = make_cband_grid(64);
  const MicroringGroup mrg(compute_mrg_config(), grid, 16);
  EXPECT_NEAR(mrg.reference_ring().resonance_m(), grid.wavelength_m(16),
              1e-15);
}

TEST(MicroringGroup, RejectsRowsBeyondGrid) {
  const WdmGrid grid = make_cband_grid(16);
  MicroringGroupConfig c = compute_mrg_config();
  EXPECT_THROW(MicroringGroup(c, grid, 8), std::invalid_argument);
  c.wavelengths_per_row = 0;
  EXPECT_THROW(MicroringGroup(c, grid, 0), std::invalid_argument);
}

}  // namespace
}  // namespace optiplet::photonics
