#include "baselines/reference_platforms.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "dnn/zoo.hpp"

namespace optiplet::baselines {
namespace {

TEST(ReferencePlatforms, AllSevenTable3RowsPresent) {
  const auto platforms = table3_reference_platforms();
  ASSERT_EQ(platforms.size(), 7u);
  EXPECT_EQ(platforms[0].name, "Nvidia P100 GPU");
  EXPECT_EQ(platforms[1].name, "Intel 9282 CPU");
  EXPECT_EQ(platforms[2].name, "AMD 3970 CPU");
  EXPECT_EQ(platforms[3].name, "Edge TPU");
  EXPECT_EQ(platforms[4].name, "Null Hop");
  EXPECT_EQ(platforms[5].name, "Deap_CNN");
  EXPECT_EQ(platforms[6].name, "HolyLight");
}

TEST(ReferencePlatforms, PowersMatchPublishedSpecs) {
  const auto platforms = table3_reference_platforms();
  EXPECT_DOUBLE_EQ(platforms[0].average_power_w, 250.0);  // P100
  EXPECT_DOUBLE_EQ(platforms[1].average_power_w, 400.0);  // Xeon 9282
  EXPECT_DOUBLE_EQ(platforms[2].average_power_w, 280.0);  // TR 3970X
  EXPECT_DOUBLE_EQ(platforms[3].average_power_w, 2.0);    // Edge TPU
}

TEST(Evaluate, LatencyPositiveAndFinite) {
  const auto platforms = table3_reference_platforms();
  const auto model = dnn::zoo::make_resnet50();
  for (const auto& p : platforms) {
    const auto r = evaluate(p, model);
    EXPECT_GT(r.latency_s, 0.0) << p.name;
    EXPECT_LT(r.latency_s, 100.0) << p.name;
    EXPECT_GT(r.energy_j, 0.0);
    EXPECT_GT(r.epb_j_per_bit, 0.0);
  }
}

TEST(Evaluate, GpuFasterThanCpusOnBigModels) {
  const auto platforms = table3_reference_platforms();
  const auto model = dnn::zoo::make_vgg16();
  const auto gpu = evaluate(platforms[0], model);
  const auto xeon = evaluate(platforms[1], model);
  const auto amd = evaluate(platforms[2], model);
  EXPECT_LT(gpu.latency_s, xeon.latency_s);
  EXPECT_LT(xeon.latency_s, amd.latency_s);
}

TEST(Evaluate, EdgeTpuFastWhenModelFits) {
  // MobileNetV2 (3.5 MB of 8-bit weights) fits the 8 MiB SRAM: the TPU is
  // compute-bound and quick. VGG16 (138 MB) does not fit: host-link bound.
  const auto platforms = table3_reference_platforms();
  const auto& tpu = platforms[3];
  const auto mobilenet = evaluate(tpu, dnn::zoo::make_mobilenetv2());
  const auto vgg = evaluate(tpu, dnn::zoo::make_vgg16());
  EXPECT_LT(mobilenet.latency_s, 0.5);
  EXPECT_GT(vgg.latency_s, 2.0);
  EXPECT_GT(vgg.latency_s, 10.0 * mobilenet.latency_s);
}

TEST(Evaluate, EdgeTpuLowestPowerOfTable3) {
  const auto platforms = table3_reference_platforms();
  for (const auto& p : platforms) {
    if (p.name != "Edge TPU") {
      EXPECT_GT(p.average_power_w, 2.0) << p.name;
    }
  }
}

TEST(Evaluate, NullHopSlowestAccelerator) {
  const auto platforms = table3_reference_platforms();
  const auto model = dnn::zoo::make_resnet50();
  const auto nullhop = evaluate(platforms[4], model);
  const auto holylight = evaluate(platforms[6], model);
  EXPECT_GT(nullhop.latency_s, holylight.latency_s);
}

TEST(Evaluate, DeapCnnWorstEpbAmongPhotonic) {
  // Table 3: DEAP-CNN's EPB (1959 nJ/b) dwarfs HolyLight's (40.3 nJ/b).
  const auto platforms = table3_reference_platforms();
  const auto model = dnn::zoo::make_resnet50();
  const auto deap = evaluate(platforms[5], model);
  const auto holy = evaluate(platforms[6], model);
  EXPECT_GT(deap.epb_j_per_bit, holy.epb_j_per_bit);
}

TEST(Evaluate, EnergyEqualsPowerTimesLatency) {
  const auto platforms = table3_reference_platforms();
  const auto model = dnn::zoo::make_lenet5();
  for (const auto& p : platforms) {
    const auto r = evaluate(p, model);
    EXPECT_NEAR(r.energy_j, p.average_power_w * r.latency_s,
                1e-9 * r.energy_j);
  }
}

TEST(Evaluate, TrafficBitsConsistentAcrossPlatforms) {
  // The EPB denominator is a property of the model, not the platform.
  const auto platforms = table3_reference_platforms();
  const auto model = dnn::zoo::make_densenet121();
  const auto first = evaluate(platforms[0], model);
  for (const auto& p : platforms) {
    EXPECT_EQ(evaluate(p, model).traffic_bits, first.traffic_bits);
  }
}

TEST(Evaluate, RejectsInvalidPlatform) {
  ReferencePlatform bad;
  bad.peak_macs_per_s = 0.0;
  EXPECT_THROW(evaluate(bad, dnn::zoo::make_lenet5()),
               std::invalid_argument);
  bad = ReferencePlatform{};
  bad.utilization = 0.0;
  EXPECT_THROW(evaluate(bad, dnn::zoo::make_lenet5()),
               std::invalid_argument);
}

/// Property: more utilization never hurts latency.
class UtilizationSweep : public ::testing::TestWithParam<double> {};

TEST_P(UtilizationSweep, LatencyMonotoneInUtilization) {
  ReferencePlatform p;
  p.utilization = GetParam();
  const auto r_low = evaluate(p, dnn::zoo::make_resnet50());
  p.utilization = GetParam() + 0.1;
  const auto r_high = evaluate(p, dnn::zoo::make_resnet50());
  EXPECT_LE(r_high.latency_s, r_low.latency_s);
}

INSTANTIATE_TEST_SUITE_P(Levels, UtilizationSweep,
                         ::testing::Values(0.05, 0.2, 0.4, 0.6, 0.8));

}  // namespace
}  // namespace optiplet::baselines
