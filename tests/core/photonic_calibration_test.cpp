/// \file photonic_calibration_test.cpp
/// Cross-checks the closed-form PhotonicInterposer transaction model
/// against the cycle-accurate PhotonicCycleNet — the photonic counterpart
/// of calibration_test.cpp. At low load the two fidelities must agree
/// within a tolerance band, or Fig. 7 / Table 3 results produced at
/// analytical fidelity are not grounded in the cycle model (and vice
/// versa); under contention the cycle model is allowed to be slower, never
/// faster, than the contention-free analytical bound.

#include <gtest/gtest.h>

#include "core/system_config.hpp"
#include "core/system_simulator.hpp"
#include "dnn/zoo.hpp"
#include "noc/photonic_cycle_net.hpp"
#include "noc/photonic_interposer.hpp"

namespace optiplet::core {
namespace {

noc::PhotonicCycleNetConfig pinned_config() {
  noc::PhotonicCycleNetConfig cfg;
  cfg.resipi_enabled = false;
  return cfg;
}

TEST(PhotonicCalibration, ZeroLoadLatencyAgreesWithCycleSim) {
  const noc::PhotonicCycleNetConfig cfg = pinned_config();
  const noc::PhotonicInterposer interposer(cfg.interposer,
                                           power::PhotonicTech{});
  noc::PhotonicCycleNet net(cfg, power::PhotonicTech{});

  constexpr std::uint64_t kBits = 16'384;
  net.inject_read(0, kBits);
  ASSERT_TRUE(net.run_until_drained(100'000));
  const double measured_s =
      static_cast<double>(net.completed().front().done_cycle) /
      net.clock_hz();
  const double analytic_s = interposer.transfer_latency_s(
      kBits,
      interposer.swmr_bandwidth_bps(cfg.interposer.total_wavelengths));
  // The cycle model quantizes store-and-forward, grant turnaround, and
  // serialization to gateway cycles; the analytical form is continuous.
  // At zero load they must sit within 5% of each other.
  EXPECT_GT(analytic_s, measured_s * 0.95);
  EXPECT_LT(analytic_s, measured_s * 1.05);
}

TEST(PhotonicCalibration, SaturatedReadsReachAnalyticalBandwidth) {
  const noc::PhotonicCycleNetConfig cfg = pinned_config();
  const noc::PhotonicInterposer interposer(cfg.interposer,
                                           power::PhotonicTech{});
  noc::PhotonicCycleNet net(cfg, power::PhotonicTech{});
  constexpr std::uint64_t kBits = 16'384;
  constexpr std::size_t kPackets = 100;
  for (std::size_t i = 0; i < kPackets; ++i) {
    net.inject_read(i % net.chiplet_count(), kBits);
  }
  ASSERT_TRUE(net.run_until_drained(1'000'000));
  const double delivered_bps =
      static_cast<double>(net.stats().read_bits_delivered) /
      net.time_s();
  const double analytic_bps =
      interposer.swmr_bandwidth_bps(cfg.interposer.total_wavelengths);
  // The cycle model may not deliver more than the physical medium, and
  // back-to-back transfers must come within 10% of it (the loss is the
  // initial buffer fill plus per-grant turnaround cycles).
  EXPECT_LE(delivered_bps, analytic_bps);
  EXPECT_GT(delivered_bps, 0.9 * analytic_bps);
}

TEST(PhotonicCalibration, SystemRunAgreesAtLowLoad) {
  // LeNet5 is the low-load case: every layer fits in minimum-gateway
  // provisioning, so no epoch transients fire and the two fidelities must
  // track each other tightly.
  SystemConfig analytical = default_system_config();
  SystemConfig cycle = analytical;
  cycle.fidelity = Fidelity::kCycleAccurate;
  const auto model = dnn::zoo::by_name("LeNet5");
  const auto a = SystemSimulator(analytical).run(
      model, accel::Architecture::kSiph2p5D);
  const auto c = SystemSimulator(cycle).run(
      model, accel::Architecture::kSiph2p5D);
  ASSERT_EQ(a.traffic_bits, c.traffic_bits);
  EXPECT_GT(c.latency_s, a.latency_s * 0.95);
  EXPECT_LT(c.latency_s, a.latency_s * 1.05);
  EXPECT_GT(c.energy_j, a.energy_j * 0.95);
  EXPECT_LT(c.energy_j, a.energy_j * 1.05);
}

TEST(PhotonicCalibration, ContentionOnlySlowsTheCycleModelWithinBounds) {
  // MobileNetV2 provisions gateways up and down across its 52 layers: the
  // cycle model sees reader-gateway contention and ReSiPI transients the
  // analytical model averages away, so it may run slower — bounded, and
  // never faster than half the analytical estimate would suggest.
  SystemConfig analytical = default_system_config();
  SystemConfig cycle = analytical;
  cycle.fidelity = Fidelity::kCycleAccurate;
  const auto model = dnn::zoo::by_name("MobileNetV2");
  const auto a = SystemSimulator(analytical).run(
      model, accel::Architecture::kSiph2p5D);
  const auto c = SystemSimulator(cycle).run(
      model, accel::Architecture::kSiph2p5D);
  ASSERT_EQ(a.traffic_bits, c.traffic_bits);
  EXPECT_GT(c.latency_s, a.latency_s * 0.9);
  EXPECT_LT(c.latency_s, a.latency_s * 1.5);
  EXPECT_GT(c.energy_j, a.energy_j * 0.9);
  EXPECT_LT(c.energy_j, a.energy_j * 1.3);
  // The cycle path must actually exercise the epoch machinery.
  EXPECT_GT(c.resipi_reconfigurations, 0u);
  EXPECT_GT(c.mean_active_gateways, 8.0);  // above the 8-chiplet minimum
}

}  // namespace
}  // namespace optiplet::core
