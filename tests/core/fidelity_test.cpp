#include "core/fidelity.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "cluster/cluster_spec.hpp"
#include "engine/scenario.hpp"
#include "serve/serving_spec.hpp"
#include "serve/tracegen.hpp"

namespace optiplet::core {
namespace {

TEST(FidelitySpec, EveryModeRoundTripsThroughItsCanonicalSpelling) {
  for (const Fidelity mode : {Fidelity::kAnalytical, Fidelity::kCycleAccurate,
                              Fidelity::kSampled}) {
    const FidelitySpec spec(mode);
    const auto parsed = fidelity_from_string(to_string(spec));
    ASSERT_TRUE(parsed.has_value()) << to_string(spec);
    EXPECT_EQ(*parsed, spec) << to_string(spec);
  }
}

TEST(FidelitySpec, PureModesSpellExactlyTheBareEnum) {
  // ScenarioSpec keys and CSV rows for the pre-FidelitySpec modes must be
  // byte-identical to the old enum encoding.
  EXPECT_EQ(to_string(FidelitySpec(Fidelity::kAnalytical)), "analytical");
  EXPECT_EQ(to_string(FidelitySpec(Fidelity::kCycleAccurate)), "cycle");
  EXPECT_STREQ(to_string(Fidelity::kAnalytical), "analytical");
  EXPECT_STREQ(to_string(Fidelity::kCycleAccurate), "cycle");
}

TEST(FidelitySpec, SampledRoundTripsWithEveryKnobSet) {
  FidelitySpec spec(Fidelity::kSampled);
  spec.windows = 12;
  spec.window_layers = 3;
  spec.seed = 987654321;
  spec.confidence = 0.99;
  const std::string text = to_string(spec);
  EXPECT_EQ(text, "sampled:windows=12,layers=3,seed=987654321,conf=0.99");
  const auto parsed = fidelity_from_string(text);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, spec);
}

TEST(FidelitySpec, LegacyAliasesParse) {
  ASSERT_TRUE(fidelity_from_string("tlm").has_value());
  EXPECT_EQ(fidelity_from_string("tlm")->mode, Fidelity::kAnalytical);
  ASSERT_TRUE(fidelity_from_string("cycle-accurate").has_value());
  EXPECT_EQ(fidelity_from_string("cycle-accurate")->mode,
            Fidelity::kCycleAccurate);
}

TEST(FidelitySpec, ShortKnobSpellingsParse) {
  const auto spec = fidelity_from_string("sampled:w=4,l=2,s=7,conf=0.9");
  ASSERT_TRUE(spec.has_value());
  EXPECT_EQ(spec->windows, 4u);
  EXPECT_EQ(spec->window_layers, 2u);
  EXPECT_EQ(spec->seed, 7u);
  EXPECT_DOUBLE_EQ(spec->confidence, 0.9);
  // Unset knobs keep their defaults.
  const auto partial = fidelity_from_string("sampled:seed=5");
  ASSERT_TRUE(partial.has_value());
  EXPECT_EQ(partial->windows, FidelitySpec().windows);
  EXPECT_EQ(partial->seed, 5u);
}

TEST(FidelitySpec, RejectsMalformedSpellings) {
  EXPECT_FALSE(fidelity_from_string("").has_value());
  EXPECT_FALSE(fidelity_from_string("quantum").has_value());
  EXPECT_FALSE(fidelity_from_string("sampled:").has_value());
  EXPECT_FALSE(fidelity_from_string("sampled:windows").has_value());
  EXPECT_FALSE(fidelity_from_string("sampled:bogus=1").has_value());
  EXPECT_FALSE(fidelity_from_string("sampled:layers=0").has_value());
  EXPECT_FALSE(fidelity_from_string("sampled:conf=1.5").has_value());
  // Knobs only exist on the sampled mode.
  EXPECT_FALSE(fidelity_from_string("analytical:windows=4").has_value());
  EXPECT_FALSE(fidelity_from_string("cycle:seed=1").has_value());
}

TEST(FidelitySpec, KnobsOnlyParticipateInIdentityUnderSampled) {
  FidelitySpec a(Fidelity::kCycleAccurate);
  FidelitySpec b(Fidelity::kCycleAccurate);
  b.seed = 99;
  EXPECT_EQ(a, b);
  a.mode = b.mode = Fidelity::kSampled;
  EXPECT_NE(a, b);
}

TEST(SplitFidelityList, FoldsKnobTokensOntoTheSampledEntry) {
  const auto parts =
      split_fidelity_list("analytical,sampled:windows=4,seed=7,cycle");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "analytical");
  EXPECT_EQ(parts[1], "sampled:windows=4,seed=7");
  EXPECT_EQ(parts[2], "cycle");
  // A bare "sampled" grows its knob list with ':' on the first knob.
  const auto bare = split_fidelity_list("sampled,w=2,l=1");
  ASSERT_EQ(bare.size(), 1u);
  EXPECT_EQ(bare[0], "sampled:w=2,l=1");
}

TEST(SampledLayerMask, DeterministicAndStratified) {
  FidelitySpec spec(Fidelity::kSampled);
  spec.windows = 8;
  spec.window_layers = 2;
  spec.seed = 3;
  const std::size_t layers = 120;
  const auto a = sampled_layer_mask(layers, spec, /*salt=*/1);
  const auto b = sampled_layer_mask(layers, spec, /*salt=*/1);
  EXPECT_EQ(a, b);
  // One window per equal stratum: each eighth of the range holds sampled
  // layers, so no window count is lost to collisions.
  std::size_t sampled = 0;
  for (std::size_t w = 0; w < spec.windows; ++w) {
    bool stratum_hit = false;
    for (std::size_t k = w * layers / spec.windows;
         k < (w + 2) * layers / spec.windows && k < layers; ++k) {
      stratum_hit |= a[k];
    }
    EXPECT_TRUE(stratum_hit) << "stratum " << w;
  }
  for (const bool hit : a) {
    sampled += hit ? 1 : 0;
  }
  EXPECT_GE(sampled, spec.windows);
  EXPECT_LE(sampled, spec.windows * spec.window_layers);
}

TEST(SampledLayerMask, SaltAndSeedChangeThePlan) {
  FidelitySpec spec(Fidelity::kSampled);
  spec.windows = 6;
  spec.seed = 1;
  const auto base = sampled_layer_mask(200, spec, 1);
  EXPECT_NE(base, sampled_layer_mask(200, spec, 2));
  spec.seed = 2;
  EXPECT_NE(base, sampled_layer_mask(200, spec, 1));
}

TEST(SampledLayerMask, DegeneratesAtTheEndpoints) {
  FidelitySpec spec(Fidelity::kSampled);
  spec.windows = 0;
  const auto none = sampled_layer_mask(50, spec, 1);
  EXPECT_EQ(std::count(none.begin(), none.end(), true), 0);
  spec.windows = 50;
  const auto all = sampled_layer_mask(50, spec, 1);
  EXPECT_EQ(std::count(all.begin(), all.end(), true), 50);
  // Non-sampled modes never sample.
  const auto off = sampled_layer_mask(50, Fidelity::kCycleAccurate, 1);
  EXPECT_EQ(std::count(off.begin(), off.end(), true), 0);
}

// Every other to_string/from_string pair in the scenario vocabulary must
// round-trip mode by mode — the CSV/CLI encodings are load-bearing
// interfaces, not display strings.

template <typename Enum, typename Parser>
void expect_round_trip(std::initializer_list<Enum> modes, Parser parse) {
  for (const Enum mode : modes) {
    const auto parsed = parse(to_string(mode));
    ASSERT_TRUE(parsed.has_value()) << to_string(mode);
    EXPECT_EQ(*parsed, mode) << to_string(mode);
  }
}

TEST(StringEncodings, EveryEnumRoundTrips) {
  expect_round_trip({serve::BatchPolicy::kNone, serve::BatchPolicy::kFixedSize,
                     serve::BatchPolicy::kDeadline},
                    serve::batch_policy_from_string);
  expect_round_trip({serve::PipelineMode::kBatchGranular,
                     serve::PipelineMode::kLayerGranular},
                    serve::pipeline_mode_from_string);
  expect_round_trip(
      {serve::ArrivalSource::kOpenLoop, serve::ArrivalSource::kClosedLoop},
      serve::arrival_source_from_string);
  expect_round_trip(
      {serve::AdmissionPolicy::kAdmitAll, serve::AdmissionPolicy::kSlaShed},
      serve::admission_policy_from_string);
  expect_round_trip({serve::TraceProfile::kDiurnal,
                     serve::TraceProfile::kBursts, serve::TraceProfile::kMmpp},
                    serve::trace_profile_from_string);
  expect_round_trip({accel::Architecture::kMonolithicCrossLight,
                     accel::Architecture::kElec2p5D,
                     accel::Architecture::kSiph2p5D},
                    engine::architecture_from_string);
  expect_round_trip(
      {photonics::ModulationFormat::kOok, photonics::ModulationFormat::kPam4},
      engine::modulation_from_string);
  expect_round_trip({cluster::BalancerPolicy::kRoundRobin,
                     cluster::BalancerPolicy::kLeastLoaded,
                     cluster::BalancerPolicy::kLocalityAware},
                    cluster::balancer_policy_from_string);
}

}  // namespace
}  // namespace optiplet::core
