/// \file batch_modulation_test.cpp
/// Tests for the two evaluation extensions beyond the paper's defaults:
/// batched inference (weights amortized across a batch) and PAM-4
/// multilevel signaling on the interposer (paper §II option [44]).

#include <gtest/gtest.h>

#include "core/system_simulator.hpp"
#include "dnn/zoo.hpp"
#include "noc/photonic_interposer.hpp"

namespace optiplet::core {
namespace {

using accel::Architecture;

TEST(Batching, ThroughputImprovesWithBatchOnWeightBoundModels) {
  // VGG16 is weight-traffic dominated: a batch of 8 amortizes the 1.1 Gb
  // weight stream, so per-image latency must drop.
  SystemConfig b1 = default_system_config();
  SystemConfig b8 = default_system_config();
  b8.batch_size = 8;
  const auto model = dnn::zoo::make_vgg16();
  const auto r1 =
      SystemSimulator(b1).run(model, Architecture::kMonolithicCrossLight);
  const auto r8 =
      SystemSimulator(b8).run(model, Architecture::kMonolithicCrossLight);
  EXPECT_LT(r8.latency_s / 8.0, r1.latency_s);
}

TEST(Batching, BatchLatencyGrowsMonotonically) {
  const auto model = dnn::zoo::make_resnet50();
  double prev = 0.0;
  for (unsigned batch : {1u, 2u, 4u, 8u}) {
    SystemConfig cfg = default_system_config();
    cfg.batch_size = batch;
    const auto r = SystemSimulator(cfg).run(model, Architecture::kSiph2p5D);
    EXPECT_GT(r.latency_s, prev);
    prev = r.latency_s;
  }
}

TEST(Batching, TrafficScalesActivationsOnly) {
  SystemConfig b1 = default_system_config();
  SystemConfig b4 = default_system_config();
  b4.batch_size = 4;
  const auto model = dnn::zoo::make_mobilenetv2();
  const auto r1 = SystemSimulator(b1).run(model, Architecture::kSiph2p5D);
  const auto r4 = SystemSimulator(b4).run(model, Architecture::kSiph2p5D);
  // Weights once + 4x activations: traffic grows, but less than 4x
  // (MobileNetV2 is activation-heavy, so it lands close to 4x; VGG16
  // would land close to 1x).
  EXPECT_GT(r4.traffic_bits, r1.traffic_bits);
  EXPECT_LT(r4.traffic_bits, 4u * r1.traffic_bits);
}

TEST(Batching, PerImageEnergyImprovesWithBatchOnSiph) {
  SystemConfig b1 = default_system_config();
  SystemConfig b8 = default_system_config();
  b8.batch_size = 8;
  const auto model = dnn::zoo::make_vgg16();
  const auto r1 = SystemSimulator(b1).run(model, Architecture::kSiph2p5D);
  const auto r8 = SystemSimulator(b8).run(model, Architecture::kSiph2p5D);
  // Per-image energy amortizes the weight stream and fixed overheads.
  // (EPB itself *rises* with batch because its traffic denominator shares
  // the weights across images — the metric rewards per-bit efficiency,
  // not per-image efficiency.)
  EXPECT_LT(r8.energy_j / 8.0, r1.energy_j);
}

TEST(Batching, RejectsZeroBatch) {
  SystemConfig cfg = default_system_config();
  cfg.batch_size = 0;
  EXPECT_THROW(SystemSimulator{cfg}, std::invalid_argument);
}

TEST(Pam4, DoublesInterposerBandwidth) {
  noc::PhotonicInterposerConfig ook;
  noc::PhotonicInterposerConfig pam4;
  pam4.modulation = photonics::ModulationFormat::kPam4;
  const noc::PhotonicInterposer ip_ook(ook, power::PhotonicTech{});
  const noc::PhotonicInterposer ip_pam4(pam4, power::PhotonicTech{});
  EXPECT_NEAR(ip_pam4.swmr_bandwidth_bps(64),
              2.0 * ip_ook.swmr_bandwidth_bps(64), 1.0);
  EXPECT_NEAR(ip_pam4.gateway_bandwidth_bps(),
              2.0 * ip_ook.gateway_bandwidth_bps(), 1.0);
}

TEST(Pam4, CostsLaserPowerPerWavelength) {
  noc::PhotonicInterposerConfig ook;
  noc::PhotonicInterposerConfig pam4;
  pam4.modulation = photonics::ModulationFormat::kPam4;
  const noc::PhotonicInterposer ip_ook(ook, power::PhotonicTech{});
  const noc::PhotonicInterposer ip_pam4(pam4, power::PhotonicTech{});
  // ~6 dB receiver penalty ~ 4x optical power per wavelength.
  const double ratio = ip_pam4.swmr_laser_power_per_wavelength_w() /
                       ip_ook.swmr_laser_power_per_wavelength_w();
  EXPECT_GT(ratio, 3.0);
  EXPECT_LT(ratio, 5.5);
}

TEST(Pam4, NeedsTwoModulatorRingsPerChannel) {
  noc::PhotonicInterposerConfig pam4;
  pam4.modulation = photonics::ModulationFormat::kPam4;
  const noc::PhotonicInterposer ip(pam4, power::PhotonicTech{});
  noc::PhotonicInterposerConfig ook;
  const noc::PhotonicInterposer ip_ook(ook, power::PhotonicTech{});
  EXPECT_GT(ip.compute_gateway().mrg().modulator_count(),
            ip_ook.compute_gateway().mrg().modulator_count());
}

TEST(Pam4, SpeedsUpCommBoundModels) {
  SystemConfig ook = default_system_config();
  SystemConfig pam4 = default_system_config();
  pam4.photonic.modulation = photonics::ModulationFormat::kPam4;
  const auto model = dnn::zoo::make_vgg16();  // weight-stream heavy
  const auto r_ook =
      SystemSimulator(ook).run(model, Architecture::kSiph2p5D);
  const auto r_pam4 =
      SystemSimulator(pam4).run(model, Architecture::kSiph2p5D);
  EXPECT_LE(r_pam4.latency_s, r_ook.latency_s * 1.001);
}

TEST(Pam4, FormatHelpersAreConsistent) {
  using photonics::ModulationFormat;
  EXPECT_EQ(photonics::bits_per_symbol(ModulationFormat::kOok), 1u);
  EXPECT_EQ(photonics::bits_per_symbol(ModulationFormat::kPam4), 2u);
  EXPECT_DOUBLE_EQ(
      photonics::receiver_penalty_db(ModulationFormat::kOok), 0.0);
  EXPECT_GT(photonics::receiver_penalty_db(ModulationFormat::kPam4), 4.7);
  EXPECT_NEAR(photonics::line_rate_bps(ModulationFormat::kPam4, 12e9),
              24e9, 1.0);
}

}  // namespace
}  // namespace optiplet::core
