/// \file calibration_test.cpp
/// Cross-checks the transaction-level electrical interposer model against
/// the cycle-accurate mesh simulator (DESIGN.md §3): the two levels must
/// agree on zero-load latency and on the hotspot throughput ceiling, or the
/// Fig.7/Table-3 numbers built on the transaction model are not grounded.

#include <gtest/gtest.h>

#include "noc/elec_interposer_model.hpp"
#include "noc/mesh.hpp"
#include "noc/traffic.hpp"

namespace optiplet::core {
namespace {

using noc::ElecInterposerModel;
using noc::ElecInterposerModelConfig;
using noc::ElectricalMesh;
using noc::MeshConfig;

TEST(Calibration, ZeroLoadLatencyAgreesWithCycleSim) {
  const MeshConfig mesh_cfg;
  ElectricalMesh mesh(mesh_cfg, power::ElectricalTech{});
  const ElecInterposerModel model(ElecInterposerModelConfig{},
                                  power::ElectricalTech{});
  // 2-hop transfer of 4 flits (512 bits).
  mesh.inject(3, 5, 512);
  ASSERT_TRUE(mesh.run_until_drained(10'000));
  const double measured_s =
      mesh.stats().packet_latency_cycles.mean() / mesh_cfg.clock_hz;
  // The analytic pipeline+serialization term (at raw port rate for an
  // unloaded network): serialization uses the effective rate, so allow the
  // hotspot-efficiency slack between the two.
  const double analytic_s = model.transfer_latency_s(512, 2.0);
  EXPECT_GT(analytic_s, measured_s * 0.8);
  EXPECT_LT(analytic_s, measured_s * 3.0);
}

TEST(Calibration, HotspotCeilingMatchesEffectiveBandwidth) {
  // Drive the cycle sim at saturation with the DNN read pattern (single hot
  // source) and compare its delivered throughput against the transaction
  // model's effective_read_bandwidth.
  const MeshConfig mesh_cfg;
  ElectricalMesh mesh(mesh_cfg, power::ElectricalTech{});
  noc::SyntheticTrafficConfig traffic;
  traffic.pattern = noc::TrafficPattern::kHotspotReads;
  traffic.hotspot = 4;
  traffic.injection_rate = 0.95;
  traffic.packet_bits = 512;
  noc::SyntheticTrafficHarness harness(mesh, traffic);
  harness.run(5'000, 30'000);

  // Delivered bits/s out of the hot source.
  const double delivered_bps = harness.throughput_flits_per_node_cycle() *
                               static_cast<double>(mesh.node_count()) *
                               mesh_cfg.link_width_bits * mesh_cfg.clock_hz;

  const ElecInterposerModel model(ElecInterposerModelConfig{},
                                  power::ElectricalTech{});
  // The transaction model's hotspot efficiency must be conservative: it
  // may not promise more than the cycle simulator delivers (within noise),
  // and should be within 2x of it.
  EXPECT_LT(model.effective_read_bandwidth_bps(), delivered_bps * 1.1);
  EXPECT_GT(model.effective_read_bandwidth_bps(), delivered_bps * 0.5);
}

TEST(Calibration, MeshEnergyPerBitMatchesAnalyticModel) {
  const MeshConfig mesh_cfg;
  ElectricalMesh mesh(mesh_cfg, power::ElectricalTech{});
  const ElecInterposerModel model(ElecInterposerModelConfig{},
                                  power::ElectricalTech{});
  // Move a known volume over a known distance.
  constexpr std::uint32_t kBits = 128 * 64;
  mesh.inject(3, 5, kBits);  // 2 hops
  ASSERT_TRUE(mesh.run_until_drained(10'000));
  const double cycle_energy = mesh.energy().total_dynamic_energy_j();
  // The analytic model adds PHY energy at the endpoints that the mesh sim
  // does not model; subtract it for the comparison.
  const power::ElectricalTech tech;
  const double analytic = model.transfer_energy_j(kBits, 2.0) -
                          2.0 * kBits * tech.phy_energy_per_bit_j;
  // Router counts differ slightly (the cycle sim traverses 3 routers for 2
  // hops); accept 2x agreement.
  EXPECT_GT(analytic, 0.3 * cycle_energy);
  EXPECT_LT(analytic, 2.0 * cycle_energy);
}

}  // namespace
}  // namespace optiplet::core
