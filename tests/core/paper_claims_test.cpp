/// \file paper_claims_test.cpp
/// The six calibration targets of DESIGN.md §6, asserted as tests. If any
/// of these fail, the reproduction has drifted away from the paper's
/// qualitative results (§VI, Fig. 7, Table 3).

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "core/report.hpp"
#include "core/system_simulator.hpp"
#include "dnn/zoo.hpp"

namespace optiplet::core {
namespace {

using accel::Architecture;

/// Shared fixture: run all five models on all three architectures once.
class PaperClaims : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    const SystemSimulator sim(default_system_config());
    results_ = new std::map<Architecture, std::vector<RunResult>>;
    for (const auto arch :
         {Architecture::kMonolithicCrossLight, Architecture::kElec2p5D,
          Architecture::kSiph2p5D}) {
      for (const auto& model : dnn::zoo::all_models()) {
        (*results_)[arch].push_back(sim.run(model, arch));
      }
    }
  }

  static void TearDownTestSuite() {
    delete results_;
    results_ = nullptr;
  }

  static PlatformAverages avg(Architecture arch) {
    return average_runs(to_string(arch), results_->at(arch));
  }

  static const RunResult& run_of(Architecture arch,
                                 const std::string& model) {
    for (const auto& r : results_->at(arch)) {
      if (r.model_name == model) {
        return r;
      }
    }
    throw std::logic_error("missing run");
  }

  static std::map<Architecture, std::vector<RunResult>>* results_;
};

std::map<Architecture, std::vector<RunResult>>* PaperClaims::results_ =
    nullptr;

// --- Claim 1: latency ordering and ratios (paper: 6.6x and 34x) ---

TEST_F(PaperClaims, LatencyOrderingSiphMonoElec) {
  const double siph = avg(Architecture::kSiph2p5D).latency_s;
  const double mono = avg(Architecture::kMonolithicCrossLight).latency_s;
  const double elec = avg(Architecture::kElec2p5D).latency_s;
  EXPECT_LT(siph, mono);
  EXPECT_LT(mono, elec);
}

TEST_F(PaperClaims, SiphVsMonolithicLatencyRatioInBand) {
  const double ratio = avg(Architecture::kMonolithicCrossLight).latency_s /
                       avg(Architecture::kSiph2p5D).latency_s;
  EXPECT_GE(ratio, 3.5);   // paper: 6.6x
  EXPECT_LE(ratio, 10.0);
}

TEST_F(PaperClaims, SiphVsElecLatencyRatioStrong) {
  const double ratio = avg(Architecture::kElec2p5D).latency_s /
                       avg(Architecture::kSiph2p5D).latency_s;
  EXPECT_GE(ratio, 5.0);  // paper: 34x; EXPERIMENTS.md discusses the gap
}

// --- Claim 2: power ordering (paper: 45.3 < 50.8 < 89.7 W) ---

TEST_F(PaperClaims, PowerOrderingElecMonoSiph) {
  const double siph = avg(Architecture::kSiph2p5D).power_w;
  const double mono = avg(Architecture::kMonolithicCrossLight).power_w;
  const double elec = avg(Architecture::kElec2p5D).power_w;
  EXPECT_LT(elec, mono);
  EXPECT_LT(mono, siph);
}

TEST_F(PaperClaims, SiphPowerPremiumInBand) {
  const double ratio = avg(Architecture::kSiph2p5D).power_w /
                       avg(Architecture::kMonolithicCrossLight).power_w;
  EXPECT_GE(ratio, 1.1);  // paper: 1.77x
  EXPECT_LE(ratio, 2.2);
}

// --- Claim 3: energy-per-bit (paper: 2.8x and 15.8x better for SiPh) ---

TEST_F(PaperClaims, SiphHasBestEpb) {
  const double siph = avg(Architecture::kSiph2p5D).epb_j_per_bit;
  EXPECT_LT(siph, avg(Architecture::kMonolithicCrossLight).epb_j_per_bit);
  EXPECT_LT(siph, avg(Architecture::kElec2p5D).epb_j_per_bit);
}

TEST_F(PaperClaims, ElecHasWorstEpb) {
  const double elec = avg(Architecture::kElec2p5D).epb_j_per_bit;
  EXPECT_GT(elec, avg(Architecture::kMonolithicCrossLight).epb_j_per_bit);
}

TEST_F(PaperClaims, SiphVsMonoEpbRatioInBand) {
  const double ratio =
      avg(Architecture::kMonolithicCrossLight).epb_j_per_bit /
      avg(Architecture::kSiph2p5D).epb_j_per_bit;
  EXPECT_GE(ratio, 1.7);  // paper: 2.8x
  EXPECT_LE(ratio, 4.5);
}

TEST_F(PaperClaims, SiphVsElecEpbRatioStrong) {
  const double ratio = avg(Architecture::kElec2p5D).epb_j_per_bit /
                       avg(Architecture::kSiph2p5D).epb_j_per_bit;
  EXPECT_GE(ratio, 3.0);  // paper: 15.8x; see EXPERIMENTS.md
}

// --- Claim 4: the LeNet5 inversion (paper §VI) ---

TEST_F(PaperClaims, LeNetEpbInversion) {
  const auto& siph = run_of(Architecture::kSiph2p5D, "LeNet5");
  const auto& mono = run_of(Architecture::kMonolithicCrossLight, "LeNet5");
  EXPECT_GT(siph.epb_j_per_bit, mono.epb_j_per_bit)
      << "SiPh must LOSE on energy efficiency for very small models";
}

TEST_F(PaperClaims, LeNetLatencyInversion) {
  const auto& siph = run_of(Architecture::kSiph2p5D, "LeNet5");
  const auto& mono = run_of(Architecture::kMonolithicCrossLight, "LeNet5");
  EXPECT_GT(siph.latency_s, mono.latency_s);
}

TEST_F(PaperClaims, SiphWinsLatencyOnAllLargeModels) {
  for (const char* model :
       {"ResNet50", "DenseNet121", "VGG16", "MobileNetV2"}) {
    EXPECT_LT(run_of(Architecture::kSiph2p5D, model).latency_s,
              run_of(Architecture::kMonolithicCrossLight, model).latency_s)
        << model;
    EXPECT_LT(run_of(Architecture::kSiph2p5D, model).latency_s,
              run_of(Architecture::kElec2p5D, model).latency_s)
        << model;
  }
}

TEST_F(PaperClaims, SiphWinsEpbOnAllLargeModels) {
  for (const char* model :
       {"ResNet50", "DenseNet121", "VGG16", "MobileNetV2"}) {
    EXPECT_LT(run_of(Architecture::kSiph2p5D, model).epb_j_per_bit,
              run_of(Architecture::kMonolithicCrossLight, model)
                  .epb_j_per_bit)
        << model;
  }
}

// --- Claim 5: ReSiPI deactivates gateways for small models ---

TEST_F(PaperClaims, ResipiLowersSiphPowerOnLeNet) {
  const auto& lenet = run_of(Architecture::kSiph2p5D, "LeNet5");
  const auto& vgg = run_of(Architecture::kSiph2p5D, "VGG16");
  EXPECT_LT(lenet.average_power_w, vgg.average_power_w);
}

TEST_F(PaperClaims, ResipiUsesFewerGatewaysOnLeNet) {
  const auto& lenet = run_of(Architecture::kSiph2p5D, "LeNet5");
  const auto& vgg = run_of(Architecture::kSiph2p5D, "VGG16");
  EXPECT_LT(lenet.mean_active_gateways, vgg.mean_active_gateways);
  // LeNet stays near the 8-gateway floor (1 per chiplet).
  EXPECT_LT(lenet.mean_active_gateways, 12.0);
}

TEST_F(PaperClaims, ResipiReconfiguresOnLargeModels) {
  const auto& resnet = run_of(Architecture::kSiph2p5D, "ResNet50");
  EXPECT_GT(resnet.resipi_reconfigurations, 0u);
  EXPECT_GT(resnet.resipi_energy_j, 0.0);
}

// --- Claim 6: Table-3 reference platform ordering is checked in
//     tests/baselines; here we pin the headline normalized figure ---

TEST_F(PaperClaims, NormalizedFig7SeriesAreConsistent) {
  std::vector<RunResult> all;
  for (const auto& [arch, runs] : *results_) {
    all.insert(all.end(), runs.begin(), runs.end());
  }
  const auto points = normalize_to_monolithic(all);
  for (const auto& p : points) {
    if (p.arch == Architecture::kMonolithicCrossLight) {
      EXPECT_DOUBLE_EQ(p.power, 1.0);
      EXPECT_DOUBLE_EQ(p.latency, 1.0);
      EXPECT_DOUBLE_EQ(p.epb, 1.0);
    } else {
      EXPECT_GT(p.power, 0.0);
      EXPECT_GT(p.latency, 0.0);
      EXPECT_GT(p.epb, 0.0);
    }
  }
}

}  // namespace
}  // namespace optiplet::core
