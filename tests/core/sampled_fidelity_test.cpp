/// \file sampled_fidelity_test.cpp
/// The degeneracy guarantees and stitching telemetry of
/// Fidelity::kSampled: zero windows IS the analytical run, windows
/// covering every layer IS the cycle-accurate run — bit for bit, every
/// RunResult field — and anything in between reports its calibration.

#include <gtest/gtest.h>

#include "core/system_simulator.hpp"
#include "dnn/zoo.hpp"

namespace optiplet::core {
namespace {

using accel::Architecture;

RunResult run_with(const FidelitySpec& fidelity, unsigned batch,
                   const dnn::Model& model) {
  SystemConfig config = default_system_config();
  config.fidelity = fidelity;
  config.batch_size = batch;
  return SystemSimulator(config).run(model, Architecture::kSiph2p5D);
}

/// Bit-for-bit equality over everything a RunResult reports. EXPECT_EQ on
/// doubles is deliberate: the degenerate sampled paths must execute the
/// exact same arithmetic as the pure modes, not merely approximate them.
void expect_identical(const RunResult& a, const RunResult& b) {
  EXPECT_EQ(a.latency_s, b.latency_s);
  EXPECT_EQ(a.energy_j, b.energy_j);
  EXPECT_EQ(a.average_power_w, b.average_power_w);
  EXPECT_EQ(a.traffic_bits, b.traffic_bits);
  EXPECT_EQ(a.epb_j_per_bit, b.epb_j_per_bit);
  EXPECT_EQ(a.resipi_reconfigurations, b.resipi_reconfigurations);
  EXPECT_EQ(a.resipi_energy_j, b.resipi_energy_j);
  EXPECT_EQ(a.mean_active_gateways, b.mean_active_gateways);
  ASSERT_EQ(a.layers.size(), b.layers.size());
  for (std::size_t i = 0; i < a.layers.size(); ++i) {
    EXPECT_EQ(a.layers[i].read_s, b.layers[i].read_s) << "layer " << i;
    EXPECT_EQ(a.layers[i].write_s, b.layers[i].write_s) << "layer " << i;
    EXPECT_EQ(a.layers[i].overhead_s, b.layers[i].overhead_s) << "layer " << i;
    EXPECT_EQ(a.layers[i].total_s, b.layers[i].total_s) << "layer " << i;
    EXPECT_EQ(a.layers[i].gateways_per_chiplet,
              b.layers[i].gateways_per_chiplet)
        << "layer " << i;
  }
}

TEST(SampledFidelity, ZeroWindowsIsTheAnalyticalRunBitForBit) {
  FidelitySpec none(Fidelity::kSampled);
  none.windows = 0;
  const auto model = dnn::zoo::make_lenet5();
  for (const unsigned batch : {1u, 4u}) {
    const auto sampled = run_with(none, batch, model);
    const auto analytical =
        run_with(Fidelity::kAnalytical, batch, model);
    expect_identical(sampled, analytical);
    EXPECT_EQ(sampled.sampled_layers, 0u);
    EXPECT_EQ(sampled.correction_factor, 1.0);
  }
}

TEST(SampledFidelity, AllWindowsIsTheCycleRunBitForBit) {
  const auto model = dnn::zoo::make_lenet5();
  FidelitySpec all(Fidelity::kSampled);
  all.windows = static_cast<unsigned>(model.layers().size());
  for (const unsigned batch : {1u, 4u}) {
    const auto sampled = run_with(all, batch, model);
    const auto cycle = run_with(Fidelity::kCycleAccurate, batch, model);
    expect_identical(sampled, cycle);
    // Every *compute* layer is sampled (the simulator walks those, not the
    // model's pooling/auxiliary layers).
    EXPECT_EQ(sampled.sampled_layers, sampled.layers.size());
  }
}

TEST(SampledFidelity, PartialSamplingReportsItsCalibration) {
  FidelitySpec spec(Fidelity::kSampled);
  spec.windows = 2;
  spec.seed = 3;
  const auto r = run_with(spec, 1, dnn::zoo::make_lenet5());
  EXPECT_GT(r.sampled_layers, 0u);
  EXPECT_LT(r.sampled_layers, r.layers.size());
  EXPECT_GT(r.correction_factor, 0.0);
  EXPECT_LE(r.correction_lo, r.correction_factor);
  EXPECT_GE(r.correction_hi, r.correction_factor);
  EXPECT_GT(r.overhead_correction, 0.0);
}

TEST(SampledFidelity, StaysWithinTheCycleEnvelopeOnADeepModel) {
  // The headline accuracy contract at the bench operating point, on the
  // model the speed bench serves: a handful of sampled windows lands the
  // corrected latency within a few percent of the full cycle run — far
  // inside the gap to the uncorrected analytical estimate.
  FidelitySpec spec(Fidelity::kSampled);
  spec.windows = 8;
  spec.seed = 3;
  const auto model = dnn::zoo::make_mobilenetv2();
  const auto sampled = run_with(spec, 1, model);
  const auto cycle = run_with(Fidelity::kCycleAccurate, 1, model);
  EXPECT_NEAR(sampled.latency_s, cycle.latency_s, 0.10 * cycle.latency_s);
  EXPECT_NEAR(sampled.energy_j, cycle.energy_j, 0.10 * cycle.energy_j);
}

TEST(SampledFidelity, NonSiphArchitecturesIgnoreSampling) {
  // Architectures without a cycle model run the analytical path whatever
  // the mode says; the sampling telemetry must stay quiet.
  FidelitySpec spec(Fidelity::kSampled);
  spec.windows = 4;
  SystemConfig config = default_system_config();
  config.fidelity = spec;
  const SystemSimulator sim(config);
  const auto model = dnn::zoo::make_lenet5();
  for (const auto arch : {Architecture::kMonolithicCrossLight,
                          Architecture::kElec2p5D}) {
    const auto r = sim.run(model, arch);
    EXPECT_EQ(r.sampled_layers, 0u);
    EXPECT_EQ(r.correction_factor, 1.0);
    SystemConfig plain = default_system_config();
    const auto base = SystemSimulator(plain).run(model, arch);
    EXPECT_EQ(r.latency_s, base.latency_s);
    EXPECT_EQ(r.energy_j, base.energy_j);
  }
}

}  // namespace
}  // namespace optiplet::core
