#include "core/report.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace optiplet::core {
namespace {

RunResult make_run(const std::string& model, accel::Architecture arch,
                   double power, double latency, double epb) {
  RunResult r;
  r.model_name = model;
  r.arch = arch;
  r.average_power_w = power;
  r.latency_s = latency;
  r.epb_j_per_bit = epb;
  return r;
}

TEST(Normalize, MonolithicBaselineIsUnity) {
  std::vector<RunResult> runs;
  runs.push_back(make_run("m", accel::Architecture::kMonolithicCrossLight,
                          50.0, 8e-3, 3.6e-9));
  runs.push_back(
      make_run("m", accel::Architecture::kSiph2p5D, 90.0, 1.2e-3, 1.3e-9));
  const auto points = normalize_to_monolithic(runs);
  ASSERT_EQ(points.size(), 2u);
  EXPECT_DOUBLE_EQ(points[0].power, 1.0);
  EXPECT_DOUBLE_EQ(points[0].latency, 1.0);
  EXPECT_NEAR(points[1].power, 1.8, 1e-9);
  EXPECT_NEAR(points[1].latency, 0.15, 1e-9);
  EXPECT_NEAR(points[1].epb, 1.3 / 3.6, 1e-9);
}

TEST(Normalize, PerModelBaselines) {
  std::vector<RunResult> runs;
  runs.push_back(make_run("a", accel::Architecture::kMonolithicCrossLight,
                          10.0, 1e-3, 1e-9));
  runs.push_back(make_run("b", accel::Architecture::kMonolithicCrossLight,
                          20.0, 2e-3, 2e-9));
  runs.push_back(
      make_run("a", accel::Architecture::kElec2p5D, 5.0, 2e-3, 2e-9));
  runs.push_back(
      make_run("b", accel::Architecture::kElec2p5D, 5.0, 2e-3, 2e-9));
  const auto points = normalize_to_monolithic(runs);
  EXPECT_NEAR(points[2].power, 0.5, 1e-9);   // 5/10 against model a
  EXPECT_NEAR(points[3].power, 0.25, 1e-9);  // 5/20 against model b
  EXPECT_NEAR(points[2].latency, 2.0, 1e-9);
  EXPECT_NEAR(points[3].latency, 1.0, 1e-9);
}

TEST(Normalize, MissingBaselineThrows) {
  std::vector<RunResult> runs;
  runs.push_back(
      make_run("a", accel::Architecture::kSiph2p5D, 1.0, 1.0, 1.0));
  EXPECT_THROW(normalize_to_monolithic(runs), std::invalid_argument);
}

TEST(Average, ArithmeticMeansAcrossModels) {
  std::vector<RunResult> runs;
  runs.push_back(
      make_run("a", accel::Architecture::kSiph2p5D, 10.0, 1e-3, 1e-9));
  runs.push_back(
      make_run("b", accel::Architecture::kSiph2p5D, 30.0, 3e-3, 3e-9));
  const auto avg = average_runs("SiPh", runs);
  EXPECT_EQ(avg.platform, "SiPh");
  EXPECT_DOUBLE_EQ(avg.power_w, 20.0);
  EXPECT_DOUBLE_EQ(avg.latency_s, 2e-3);
  EXPECT_DOUBLE_EQ(avg.epb_j_per_bit, 2e-9);
}

TEST(Average, RejectsEmpty) {
  EXPECT_THROW(average_runs("x", {}), std::invalid_argument);
}

}  // namespace
}  // namespace optiplet::core
