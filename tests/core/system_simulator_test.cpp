#include "core/system_simulator.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "dnn/zoo.hpp"

namespace optiplet::core {
namespace {

using accel::Architecture;

TEST(SystemSimulator, ResultsAreInternallyConsistent) {
  const SystemSimulator sim(default_system_config());
  const auto r = sim.run(dnn::zoo::make_resnet50(), Architecture::kSiph2p5D);
  EXPECT_GT(r.latency_s, 0.0);
  EXPECT_GT(r.energy_j, 0.0);
  EXPECT_GT(r.traffic_bits, 0u);
  EXPECT_NEAR(r.average_power_w, r.energy_j / r.latency_s,
              1e-9 * r.average_power_w);
  EXPECT_NEAR(r.epb_j_per_bit,
              r.energy_j / static_cast<double>(r.traffic_bits),
              1e-12 * r.epb_j_per_bit);
}

TEST(SystemSimulator, LatencyIsSumOfLayerTimes) {
  const SystemSimulator sim(default_system_config());
  const auto r =
      sim.run(dnn::zoo::make_vgg16(), Architecture::kMonolithicCrossLight);
  double sum = 0.0;
  for (const auto& l : r.layers) {
    sum += l.total_s;
  }
  EXPECT_NEAR(r.latency_s, sum, 1e-6 * r.latency_s);
}

TEST(SystemSimulator, LayerCountMatchesWorkload) {
  const SystemSimulator sim(default_system_config());
  const auto model = dnn::zoo::make_resnet50();
  const auto r = sim.run(model, Architecture::kSiph2p5D);
  EXPECT_EQ(r.layers.size(), 54u);  // 53 conv + 1 fc
}

TEST(SystemSimulator, TrafficBitsIdenticalAcrossArchitectures) {
  // The EPB denominator must not depend on the architecture.
  const SystemSimulator sim(default_system_config());
  const auto model = dnn::zoo::make_densenet121();
  const auto mono =
      sim.run(model, Architecture::kMonolithicCrossLight).traffic_bits;
  EXPECT_EQ(sim.run(model, Architecture::kElec2p5D).traffic_bits, mono);
  EXPECT_EQ(sim.run(model, Architecture::kSiph2p5D).traffic_bits, mono);
}

TEST(SystemSimulator, DeterministicAcrossRuns) {
  const SystemSimulator sim(default_system_config());
  const auto model = dnn::zoo::make_mobilenetv2();
  const auto a = sim.run(model, Architecture::kSiph2p5D);
  const auto b = sim.run(model, Architecture::kSiph2p5D);
  EXPECT_DOUBLE_EQ(a.latency_s, b.latency_s);
  EXPECT_DOUBLE_EQ(a.energy_j, b.energy_j);
  EXPECT_EQ(a.resipi_reconfigurations, b.resipi_reconfigurations);
}

TEST(SystemSimulator, PerLayerBreakdownIsComplete) {
  const SystemSimulator sim(default_system_config());
  const auto r = sim.run(dnn::zoo::make_vgg16(), Architecture::kSiph2p5D);
  for (const auto& l : r.layers) {
    EXPECT_GT(l.total_s, 0.0);
    EXPECT_GE(l.total_s,
              std::max(l.compute_s, std::max(l.read_s, l.write_s)) * 0.99);
    EXPECT_GE(l.gateways_per_chiplet, 1u);
    EXPECT_LE(l.gateways_per_chiplet, 4u);
  }
}

TEST(SystemSimulator, ElecLayersDoNotOverlapComms) {
  // The electrical model is store-and-forward per layer: total time is the
  // *sum* of compute and communication, not the max.
  const SystemSimulator sim(default_system_config());
  const auto r = sim.run(dnn::zoo::make_resnet50(), Architecture::kElec2p5D);
  for (const auto& l : r.layers) {
    EXPECT_GE(l.total_s,
              l.compute_s + l.read_s + l.write_s - 1e-12);
  }
}

TEST(SystemSimulator, LedgerCategoriesPresent) {
  const SystemSimulator sim(default_system_config());
  const auto siph = sim.run(dnn::zoo::make_resnet50(),
                            Architecture::kSiph2p5D);
  EXPECT_GT(siph.ledger.entries().count("compute.laser"), 0u);
  EXPECT_GT(siph.ledger.entries().count("network.static"), 0u);
  EXPECT_GT(siph.ledger.entries().count("memory.hbm_access"), 0u);
  const auto mono = sim.run(dnn::zoo::make_resnet50(),
                            Architecture::kMonolithicCrossLight);
  EXPECT_GT(mono.ledger.entries().count("compute.die_static"), 0u);
  EXPECT_GT(mono.ledger.entries().count("memory.ddr_access"), 0u);
}

TEST(SystemSimulator, MonolithicResidentModelSkipsDdr) {
  // LeNet5 fits the on-die buffer: no per-layer DDR streaming energy.
  const SystemSimulator sim(default_system_config());
  const auto lenet = sim.run(dnn::zoo::make_lenet5(),
                             Architecture::kMonolithicCrossLight);
  const auto it = lenet.ledger.entries().find("memory.ddr_access");
  const double ddr =
      it == lenet.ledger.entries().end() ? 0.0 : it->second.dynamic_energy_j;
  EXPECT_DOUBLE_EQ(ddr, 0.0);
  const auto resnet = sim.run(dnn::zoo::make_resnet50(),
                              Architecture::kMonolithicCrossLight);
  EXPECT_GT(resnet.ledger.entries().at("memory.ddr_access").dynamic_energy_j,
            0.0);
}

TEST(SystemSimulator, MoreWavelengthsNeverSlower) {
  SystemConfig narrow = default_system_config();
  narrow.photonic.total_wavelengths = 16;
  SystemConfig wide = default_system_config();
  wide.photonic.total_wavelengths = 128;
  const auto model = dnn::zoo::make_vgg16();
  const auto r_narrow =
      SystemSimulator(narrow).run(model, Architecture::kSiph2p5D);
  const auto r_wide =
      SystemSimulator(wide).run(model, Architecture::kSiph2p5D);
  EXPECT_LE(r_wide.latency_s, r_narrow.latency_s * 1.001);
}

TEST(SystemSimulator, FasterSymbolRateCutsComputeTime) {
  SystemConfig slow = default_system_config();
  slow.tech.compute.mac_symbol_rate_hz = 1e9;
  SystemConfig fast = default_system_config();
  fast.tech.compute.mac_symbol_rate_hz = 8e9;
  const auto model = dnn::zoo::make_vgg16();  // compute-bound convs
  EXPECT_LT(
      SystemSimulator(fast).run(model, Architecture::kSiph2p5D).latency_s,
      SystemSimulator(slow).run(model, Architecture::kSiph2p5D).latency_s);
}

TEST(SystemSimulator, MonolithicBandwidthGatesLatency) {
  SystemConfig starved = default_system_config();
  starved.monolithic_memory_bandwidth_bps = 16e9;
  SystemConfig fed = default_system_config();
  fed.monolithic_memory_bandwidth_bps = 512e9;
  const auto model = dnn::zoo::make_resnet50();
  EXPECT_GT(SystemSimulator(starved)
                .run(model, Architecture::kMonolithicCrossLight)
                .latency_s,
            SystemSimulator(fed)
                .run(model, Architecture::kMonolithicCrossLight)
                .latency_s);
}

TEST(SystemSimulator, RejectsInvalidConfig) {
  SystemConfig bad = default_system_config();
  bad.parameter_bits = 0;
  EXPECT_THROW(SystemSimulator{bad}, std::invalid_argument);
  bad = default_system_config();
  bad.monolithic_memory_bandwidth_bps = 0.0;
  EXPECT_THROW(SystemSimulator{bad}, std::invalid_argument);
}

/// Property sweep: every (model, architecture) run satisfies basic sanity.
class RunMatrix
    : public ::testing::TestWithParam<std::tuple<std::string, int>> {};

TEST_P(RunMatrix, SaneResults) {
  const auto& [model_name, arch_index] = GetParam();
  const SystemSimulator sim(default_system_config());
  const auto arch = static_cast<Architecture>(arch_index);
  const auto r = sim.run(dnn::zoo::by_name(model_name), arch);
  EXPECT_GT(r.latency_s, 1e-7);
  EXPECT_LT(r.latency_s, 1.0);            // nothing takes a second
  EXPECT_GT(r.average_power_w, 1.0);      // watts, not milliwatts
  EXPECT_LT(r.average_power_w, 200.0);    // and not kilowatts
  EXPECT_GT(r.epb_j_per_bit, 1e-14);
  EXPECT_LT(r.epb_j_per_bit, 1e-7);
}

INSTANTIATE_TEST_SUITE_P(
    AllPairs, RunMatrix,
    ::testing::Combine(::testing::Values("LeNet5", "ResNet50", "DenseNet121",
                                         "VGG16", "MobileNetV2"),
                       ::testing::Values(0, 1, 2)));

}  // namespace
}  // namespace optiplet::core
