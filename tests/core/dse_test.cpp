#include "core/dse.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace optiplet::core {
namespace {

DsePoint make_point(double latency, double power) {
  DsePoint p;
  p.latency_s = latency;
  p.power_w = power;
  return p;
}

TEST(MarkPareto, SinglePointIsPareto) {
  std::vector<DsePoint> pts{make_point(1.0, 1.0)};
  mark_pareto(pts);
  EXPECT_TRUE(pts[0].pareto);
}

TEST(MarkPareto, DominatedPointExcluded) {
  std::vector<DsePoint> pts{make_point(1.0, 1.0), make_point(2.0, 2.0)};
  mark_pareto(pts);
  EXPECT_TRUE(pts[0].pareto);
  EXPECT_FALSE(pts[1].pareto);
}

TEST(MarkPareto, TradeoffPointsBothKept) {
  std::vector<DsePoint> pts{make_point(1.0, 3.0), make_point(3.0, 1.0)};
  mark_pareto(pts);
  EXPECT_TRUE(pts[0].pareto);
  EXPECT_TRUE(pts[1].pareto);
}

TEST(MarkPareto, EqualPointsBothPareto) {
  // Neither strictly dominates the other.
  std::vector<DsePoint> pts{make_point(1.0, 1.0), make_point(1.0, 1.0)};
  mark_pareto(pts);
  EXPECT_TRUE(pts[0].pareto);
  EXPECT_TRUE(pts[1].pareto);
}

TEST(MarkPareto, ChainKeepsOnlyFrontier) {
  std::vector<DsePoint> pts{make_point(1.0, 5.0), make_point(2.0, 3.0),
                            make_point(3.0, 2.0), make_point(4.0, 4.0),
                            make_point(5.0, 1.0)};
  mark_pareto(pts);
  EXPECT_TRUE(pts[0].pareto);
  EXPECT_TRUE(pts[1].pareto);
  EXPECT_TRUE(pts[2].pareto);
  EXPECT_FALSE(pts[3].pareto);  // dominated by (3,2)
  EXPECT_TRUE(pts[4].pareto);
}

TEST(Explore, SkipsIndivisibleAndInfeasibleCombos) {
  DseOptions options;
  options.wavelengths = {64, 128};
  options.gateways_per_chiplet = {3, 4};  // 3 never divides 64/128
  options.models = {"LeNet5"};            // keep it fast
  const auto points = explore(options, default_system_config());
  for (const auto& p : points) {
    EXPECT_EQ(p.wavelengths % p.gateways_per_chiplet, 0u);
    // 128 lambda / 4 gateways = 32-channel rows: infeasible, must be gone.
    EXPECT_FALSE(p.wavelengths == 128 && p.gateways_per_chiplet == 4);
  }
  // (64, 4) survives.
  bool found_table1 = false;
  for (const auto& p : points) {
    found_table1 |= p.wavelengths == 64 && p.gateways_per_chiplet == 4;
  }
  EXPECT_TRUE(found_table1);
}

TEST(Explore, PointsCarrySaneMetrics) {
  DseOptions options;
  options.wavelengths = {32, 64};
  options.gateways_per_chiplet = {4};
  options.models = {"LeNet5", "MobileNetV2"};
  const auto points = explore(options, default_system_config());
  ASSERT_EQ(points.size(), 2u);
  for (const auto& p : points) {
    EXPECT_GT(p.latency_s, 0.0);
    EXPECT_GT(p.power_w, 1.0);
    EXPECT_GT(p.epb_j_per_bit, 0.0);
  }
  // More wavelengths: never slower, never cheaper on power.
  EXPECT_LE(points[1].latency_s, points[0].latency_s * 1.001);
  EXPECT_GE(points[1].power_w, points[0].power_w * 0.999);
}

TEST(Explore, AtLeastOneParetoPointAlways) {
  DseOptions options;
  options.wavelengths = {16, 64};
  options.gateways_per_chiplet = {2, 4};
  options.models = {"LeNet5"};
  const auto points = explore(options, default_system_config());
  ASSERT_FALSE(points.empty());
  bool any = false;
  for (const auto& p : points) {
    any |= p.pareto;
  }
  EXPECT_TRUE(any);
}

TEST(Explore, RejectsEmptyAxes) {
  DseOptions options;
  options.wavelengths = {};
  EXPECT_THROW(explore(options, default_system_config()),
               std::invalid_argument);
}

TEST(Explore, Pam4AxisWorks) {
  DseOptions options;
  options.wavelengths = {64};
  options.gateways_per_chiplet = {4};
  options.modulations = {photonics::ModulationFormat::kOok,
                         photonics::ModulationFormat::kPam4};
  options.models = {"VGG16"};
  const auto points = explore(options, default_system_config());
  ASSERT_EQ(points.size(), 2u);
  // PAM-4 buys bandwidth at a power cost.
  EXPECT_LE(points[1].latency_s, points[0].latency_s * 1.001);
  EXPECT_GT(points[1].power_w, points[0].power_w);
}

}  // namespace
}  // namespace optiplet::core
