#include "power/tech_params.hpp"

#include <gtest/gtest.h>

namespace optiplet::power {
namespace {

TEST(TechParams, DefaultsAreSane) {
  const TechParams t = default_tech();
  // Electrical
  EXPECT_GT(t.electrical.router_energy_per_bit_j, 0.0);
  EXPECT_LT(t.electrical.router_energy_per_bit_j, 10e-12);
  EXPECT_GE(t.electrical.router_pipeline_cycles, 1u);
  EXPECT_GE(t.electrical.link_cycles_per_hop, 1u);
  // Photonic
  EXPECT_GT(t.photonic.laser.wall_plug_efficiency, 0.0);
  EXPECT_LE(t.photonic.laser.wall_plug_efficiency, 1.0);
  EXPECT_GE(t.photonic.laser.tec_overhead_factor, 1.0);
  EXPECT_GT(t.photonic.system_margin_db, 0.0);
  // Compute
  EXPECT_GT(t.compute.mac_symbol_rate_hz, 0.0);
  EXPECT_GT(t.compute.mac_utilization, 0.0);
  EXPECT_LE(t.compute.mac_utilization, 1.0);
  EXPECT_EQ(t.compute.parameter_bits, 8u);
}

TEST(TechParams, InterposerWaveguideIsLowLoss) {
  const TechParams t = default_tech();
  // Interposer-grade waveguides must be at least 2x better than the
  // chiplet-internal strip waveguides, or the interposer story collapses.
  EXPECT_LT(t.photonic.waveguide.propagation_loss_db_per_m * 2.0,
            t.compute.chip_waveguide_loss_db_per_m);
}

TEST(TechParams, PhotodetectorSupportsTable1Rate) {
  const TechParams t = default_tech();
  photonics::Photodetector pd(t.photonic.photodetector);
  EXPECT_TRUE(pd.supports_rate(12e9));
}

TEST(TechParams, HbmFasterThanInterposer) {
  const TechParams t = default_tech();
  // HBM internal bandwidth must exceed the 64x12G interposer broadcast, or
  // the memory chiplet would be the bottleneck instead of the network.
  EXPECT_GT(t.compute.hbm_bandwidth_bps, 64.0 * 12e9);
}

TEST(TechParams, EnergiesArePicojouleClass) {
  const TechParams t = default_tech();
  EXPECT_LT(t.compute.dac_energy_per_conversion_j, 10e-12);
  EXPECT_LT(t.compute.adc_energy_per_conversion_j, 10e-12);
  EXPECT_LT(t.photonic.gateway_digital_energy_per_bit_j, 10e-12);
  EXPECT_LT(t.electrical.phy_energy_per_bit_j, 10e-12);
}

}  // namespace
}  // namespace optiplet::power
