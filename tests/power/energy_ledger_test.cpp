#include "power/energy_ledger.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace optiplet::power {
namespace {

TEST(EnergyLedger, StartsEmpty) {
  EnergyLedger ledger;
  EXPECT_DOUBLE_EQ(ledger.total_dynamic_energy_j(), 0.0);
  EXPECT_DOUBLE_EQ(ledger.total_static_power_w(), 0.0);
  EXPECT_DOUBLE_EQ(ledger.total_energy_j(1.0), 0.0);
}

TEST(EnergyLedger, DynamicEnergyAccumulatesPerCategory) {
  EnergyLedger ledger;
  ledger.charge_energy("laser", 1.0);
  ledger.charge_energy("laser", 2.0);
  ledger.charge_energy("rings", 0.5);
  EXPECT_DOUBLE_EQ(ledger.total_dynamic_energy_j(), 3.5);
  EXPECT_DOUBLE_EQ(ledger.entries().at("laser").dynamic_energy_j, 3.0);
}

TEST(EnergyLedger, StaticPowerIntegratesOverDuration) {
  EnergyLedger ledger;
  ledger.add_static_power("router", 2.0);
  EXPECT_DOUBLE_EQ(ledger.total_energy_j(3.0), 6.0);
  EXPECT_DOUBLE_EQ(ledger.average_power_w(3.0), 2.0);
}

TEST(EnergyLedger, ChargePowerForDutyCycledComponents) {
  EnergyLedger ledger;
  ledger.charge_power_for("gateway", 10.0, 0.25);
  EXPECT_DOUBLE_EQ(ledger.total_dynamic_energy_j(), 2.5);
}

TEST(EnergyLedger, MixedStaticAndDynamic) {
  EnergyLedger ledger;
  ledger.add_static_power("noc", 1.0);
  ledger.charge_energy("noc", 4.0);
  EXPECT_DOUBLE_EQ(ledger.total_energy_j(2.0), 6.0);
  EXPECT_DOUBLE_EQ(ledger.average_power_w(2.0), 3.0);
}

TEST(EnergyLedger, EnergyPerBit) {
  EnergyLedger ledger;
  ledger.charge_energy("x", 1e-6);
  EXPECT_DOUBLE_EQ(ledger.energy_per_bit_j(1.0, 1000), 1e-9);
}

TEST(EnergyLedger, MergeCombinesCategories) {
  EnergyLedger a;
  a.charge_energy("laser", 1.0);
  a.add_static_power("laser", 2.0);
  EnergyLedger b;
  b.charge_energy("laser", 3.0);
  b.charge_energy("rings", 1.0);
  a.merge(b);
  EXPECT_DOUBLE_EQ(a.entries().at("laser").dynamic_energy_j, 4.0);
  EXPECT_DOUBLE_EQ(a.entries().at("laser").static_power_w, 2.0);
  EXPECT_DOUBLE_EQ(a.entries().at("rings").dynamic_energy_j, 1.0);
}

TEST(EnergyLedger, ResetClearsEverything) {
  EnergyLedger ledger;
  ledger.charge_energy("x", 1.0);
  ledger.reset();
  EXPECT_TRUE(ledger.entries().empty());
}

TEST(EnergyLedger, RejectsInvalidCharges) {
  EnergyLedger ledger;
  EXPECT_THROW(ledger.charge_energy("x", -1.0), std::invalid_argument);
  EXPECT_THROW(ledger.add_static_power("x", -1.0), std::invalid_argument);
  EXPECT_THROW(ledger.charge_power_for("x", -1.0, 1.0),
               std::invalid_argument);
  EXPECT_THROW(ledger.charge_power_for("x", 1.0, -1.0),
               std::invalid_argument);
  EXPECT_THROW((void)ledger.average_power_w(0.0), std::invalid_argument);
  EXPECT_THROW((void)ledger.energy_per_bit_j(1.0, 0), std::invalid_argument);
}

}  // namespace
}  // namespace optiplet::power
