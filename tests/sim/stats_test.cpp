#include "sim/stats.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace optiplet::sim {
namespace {

TEST(RunningStat, EmptyIsZero) {
  RunningStat s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStat, MeanAndVariance) {
  RunningStat s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    s.add(x);
  }
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStat, ResetClears) {
  RunningStat s;
  s.add(1.0);
  s.reset();
  EXPECT_EQ(s.count(), 0u);
}

TEST(RunningStat, SingleSample) {
  RunningStat s;
  s.add(3.5);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 3.5);
  EXPECT_DOUBLE_EQ(s.max(), 3.5);
}

TEST(Histogram, BinsValuesCorrectly) {
  Histogram h(10.0, 5);
  h.add(0.0);
  h.add(9.99);
  h.add(10.0);
  h.add(49.9);
  EXPECT_EQ(h.bin(0), 2u);
  EXPECT_EQ(h.bin(1), 1u);
  EXPECT_EQ(h.bin(4), 1u);
}

TEST(Histogram, OverflowAndUnderflow) {
  Histogram h(1.0, 2);
  h.add(-0.5);
  h.add(5.0);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 1u);
}

TEST(Histogram, RejectsBadConstruction) {
  EXPECT_THROW(Histogram(0.0, 5), std::invalid_argument);
  EXPECT_THROW(Histogram(1.0, 0), std::invalid_argument);
}

TEST(Histogram, QuantileMedianOfUniform) {
  Histogram h(1.0, 100);
  for (int i = 0; i < 100; ++i) {
    h.add(static_cast<double>(i) + 0.5);
  }
  EXPECT_NEAR(h.quantile(0.5), 50.0, 1.5);
  EXPECT_NEAR(h.quantile(0.99), 99.0, 1.5);
}

TEST(Histogram, QuantileValidatesRange) {
  Histogram h(1.0, 10);
  h.add(1.0);
  EXPECT_THROW((void)h.quantile(0.0), std::invalid_argument);
  EXPECT_THROW((void)h.quantile(1.5), std::invalid_argument);
}

TEST(Histogram, TracksUnderlyingStat) {
  Histogram h(1.0, 10);
  h.add(2.0);
  h.add(4.0);
  EXPECT_DOUBLE_EQ(h.stat().mean(), 3.0);
}

TEST(RunningStat, MergeMatchesSequentialAdds) {
  // Welford/Chan parallel-merge must equal one stream of adds.
  RunningStat a;
  RunningStat b;
  RunningStat all;
  const double left[] = {2.0, 4.0, 4.0, 4.0};
  const double right[] = {5.0, 5.0, 7.0, 9.0};
  for (const double x : left) {
    a.add(x);
    all.add(x);
  }
  for (const double x : right) {
    b.add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_DOUBLE_EQ(a.mean(), all.mean());
  EXPECT_NEAR(a.variance(), all.variance(), 1e-12);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
  EXPECT_DOUBLE_EQ(a.sum(), all.sum());
}

TEST(RunningStat, MergeWithEmptySides) {
  RunningStat a;
  RunningStat empty;
  a.add(3.0);
  a.add(5.0);
  a.merge(empty);  // no-op
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 4.0);

  RunningStat target;
  target.merge(a);  // adopt
  EXPECT_EQ(target.count(), 2u);
  EXPECT_DOUBLE_EQ(target.mean(), 4.0);
  EXPECT_DOUBLE_EQ(target.min(), 3.0);
  EXPECT_DOUBLE_EQ(target.max(), 5.0);
}

TEST(LogHistogram, BinsGeometrically) {
  LogHistogram h(1.0, 100.0, 2);  // buckets [1,10) and [10,100)
  h.add(2.0);
  h.add(5.0);
  h.add(20.0);
  EXPECT_EQ(h.bin(0), 2u);
  EXPECT_EQ(h.bin(1), 1u);
  EXPECT_EQ(h.underflow(), 0u);
  EXPECT_EQ(h.overflow(), 0u);
  EXPECT_DOUBLE_EQ(h.edge(0), 1.0);
  EXPECT_NEAR(h.edge(1), 10.0, 1e-9);
  EXPECT_NEAR(h.edge(2), 100.0, 1e-9);
}

TEST(LogHistogram, UnderflowAndOverflow) {
  LogHistogram h(1.0, 10.0, 4);
  h.add(0.5);
  h.add(0.0);   // below lo (log undefined) counts as underflow
  h.add(10.0);  // hi edge is exclusive
  h.add(1e9);
  EXPECT_EQ(h.underflow(), 2u);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_EQ(h.stat().count(), 4u);
}

TEST(LogHistogram, QuantileInterpolates) {
  LogHistogram h(1e-6, 100.0, 160);
  for (int i = 0; i < 1000; ++i) {
    h.add(1e-3 * (1.0 + static_cast<double>(i) / 1000.0));  // [1ms, 2ms)
  }
  const double p50 = h.quantile(0.5);
  EXPECT_GT(p50, 1.2e-3);
  EXPECT_LT(p50, 1.8e-3);
  // Tails pin to the layout edges.
  LogHistogram edge(1.0, 10.0, 4);
  edge.add(0.5);
  EXPECT_DOUBLE_EQ(edge.quantile(0.5), 1.0);
  edge.add(100.0);
  EXPECT_DOUBLE_EQ(edge.quantile(0.99), 10.0);
}

TEST(LogHistogram, MergeMatchesSequentialAdds) {
  LogHistogram a(1e-3, 10.0, 40);
  LogHistogram b(1e-3, 10.0, 40);
  LogHistogram all(1e-3, 10.0, 40);
  for (const double x : {0.01, 0.02, 0.5}) {
    a.add(x);
    all.add(x);
  }
  for (const double x : {0.1, 1.0, 5.0, 20.0}) {
    b.add(x);
    all.add(x);
  }
  a.merge(b);
  for (std::size_t i = 0; i < a.bin_count(); ++i) {
    EXPECT_EQ(a.bin(i), all.bin(i));
  }
  EXPECT_EQ(a.overflow(), all.overflow());
  EXPECT_DOUBLE_EQ(a.quantile(0.5), all.quantile(0.5));
  EXPECT_DOUBLE_EQ(a.stat().mean(), all.stat().mean());
}

TEST(LogHistogram, MergeRejectsLayoutMismatch) {
  LogHistogram a(1e-3, 10.0, 40);
  LogHistogram b(1e-3, 10.0, 41);
  EXPECT_THROW(a.merge(b), std::invalid_argument);
}

TEST(LogHistogram, RejectsBadConstruction) {
  EXPECT_THROW(LogHistogram(0.0, 10.0, 4), std::invalid_argument);
  EXPECT_THROW(LogHistogram(10.0, 10.0, 4), std::invalid_argument);
  EXPECT_THROW(LogHistogram(1.0, 10.0, 0), std::invalid_argument);
}

TEST(CounterSet, AccumulatesNamedCounters) {
  CounterSet c;
  c.add("flits");
  c.add("flits", 4);
  c.add("packets");
  EXPECT_EQ(c.get("flits"), 5u);
  EXPECT_EQ(c.get("packets"), 1u);
  EXPECT_EQ(c.get("missing"), 0u);
}

TEST(CounterSet, ResetClearsAll) {
  CounterSet c;
  c.add("x", 10);
  c.reset();
  EXPECT_EQ(c.get("x"), 0u);
  EXPECT_TRUE(c.all().empty());
}

}  // namespace
}  // namespace optiplet::sim
