#include "sim/stats.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace optiplet::sim {
namespace {

TEST(RunningStat, EmptyIsZero) {
  RunningStat s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStat, MeanAndVariance) {
  RunningStat s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    s.add(x);
  }
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStat, ResetClears) {
  RunningStat s;
  s.add(1.0);
  s.reset();
  EXPECT_EQ(s.count(), 0u);
}

TEST(RunningStat, SingleSample) {
  RunningStat s;
  s.add(3.5);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 3.5);
  EXPECT_DOUBLE_EQ(s.max(), 3.5);
}

TEST(Histogram, BinsValuesCorrectly) {
  Histogram h(10.0, 5);
  h.add(0.0);
  h.add(9.99);
  h.add(10.0);
  h.add(49.9);
  EXPECT_EQ(h.bin(0), 2u);
  EXPECT_EQ(h.bin(1), 1u);
  EXPECT_EQ(h.bin(4), 1u);
}

TEST(Histogram, OverflowAndUnderflow) {
  Histogram h(1.0, 2);
  h.add(-0.5);
  h.add(5.0);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 1u);
}

TEST(Histogram, RejectsBadConstruction) {
  EXPECT_THROW(Histogram(0.0, 5), std::invalid_argument);
  EXPECT_THROW(Histogram(1.0, 0), std::invalid_argument);
}

TEST(Histogram, QuantileMedianOfUniform) {
  Histogram h(1.0, 100);
  for (int i = 0; i < 100; ++i) {
    h.add(static_cast<double>(i) + 0.5);
  }
  EXPECT_NEAR(h.quantile(0.5), 50.0, 1.5);
  EXPECT_NEAR(h.quantile(0.99), 99.0, 1.5);
}

TEST(Histogram, QuantileValidatesRange) {
  Histogram h(1.0, 10);
  h.add(1.0);
  EXPECT_THROW((void)h.quantile(0.0), std::invalid_argument);
  EXPECT_THROW((void)h.quantile(1.5), std::invalid_argument);
}

TEST(Histogram, TracksUnderlyingStat) {
  Histogram h(1.0, 10);
  h.add(2.0);
  h.add(4.0);
  EXPECT_DOUBLE_EQ(h.stat().mean(), 3.0);
}

TEST(CounterSet, AccumulatesNamedCounters) {
  CounterSet c;
  c.add("flits");
  c.add("flits", 4);
  c.add("packets");
  EXPECT_EQ(c.get("flits"), 5u);
  EXPECT_EQ(c.get("packets"), 1u);
  EXPECT_EQ(c.get("missing"), 0u);
}

TEST(CounterSet, ResetClearsAll) {
  CounterSet c;
  c.add("x", 10);
  c.reset();
  EXPECT_EQ(c.get("x"), 0u);
  EXPECT_TRUE(c.all().empty());
}

}  // namespace
}  // namespace optiplet::sim
