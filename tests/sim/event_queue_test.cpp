#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

namespace optiplet::sim {
namespace {

TEST(EventQueue, RunsEventsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule_at(3.0, [&] { order.push_back(3); });
  q.schedule_at(1.0, [&] { order.push_back(1); });
  q.schedule_at(2.0, [&] { order.push_back(2); });
  q.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, EqualTimesRunInInsertionOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.schedule_at(5.0, [&order, i] { order.push_back(i); });
  }
  q.run();
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
  }
}

TEST(EventQueue, NowAdvancesWithEvents) {
  EventQueue q;
  double seen = -1.0;
  q.schedule_at(2.5, [&] { seen = q.now(); });
  q.run();
  EXPECT_DOUBLE_EQ(seen, 2.5);
  EXPECT_DOUBLE_EQ(q.now(), 2.5);
}

TEST(EventQueue, CallbacksMayScheduleMoreEvents) {
  EventQueue q;
  int fired = 0;
  q.schedule_at(1.0, [&] {
    ++fired;
    q.schedule_in(1.0, [&] { ++fired; });
  });
  q.run();
  EXPECT_EQ(fired, 2);
  EXPECT_DOUBLE_EQ(q.now(), 2.0);
}

TEST(EventQueue, RejectsSchedulingInThePast) {
  EventQueue q;
  q.schedule_at(10.0, [] {});
  q.step();
  EXPECT_THROW(q.schedule_at(5.0, [] {}), std::invalid_argument);
  EXPECT_THROW(q.schedule_in(-1.0, [] {}), std::invalid_argument);
}

TEST(EventQueue, StepReturnsFalseWhenEmpty) {
  EventQueue q;
  EXPECT_FALSE(q.step());
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, RunHonoursEventBudget) {
  EventQueue q;
  int fired = 0;
  for (int i = 0; i < 10; ++i) {
    q.schedule_at(static_cast<double>(i), [&] { ++fired; });
  }
  const std::uint64_t processed = q.run(4);
  EXPECT_EQ(processed, 4u);
  EXPECT_EQ(fired, 4);
  EXPECT_EQ(q.size(), 6u);
}

TEST(EventQueue, CountsProcessedEvents) {
  EventQueue q;
  for (int i = 0; i < 5; ++i) {
    q.schedule_at(static_cast<double>(i), [] {});
  }
  EXPECT_EQ(q.processed(), 0u);
  q.step();
  EXPECT_EQ(q.processed(), 1u);
  q.run();
  EXPECT_EQ(q.processed(), 5u);
}

TEST(EventQueue, TracksPeakSize) {
  EventQueue q;
  EXPECT_EQ(q.peak_size(), 0u);
  q.schedule_at(1.0, [] {});
  q.schedule_at(2.0, [] {});
  q.schedule_at(3.0, [] {});
  EXPECT_EQ(q.peak_size(), 3u);
  q.run();
  // The peak survives the drain; late scheduling below it does not move it.
  EXPECT_EQ(q.peak_size(), 3u);
  q.schedule_at(4.0, [] {});
  EXPECT_EQ(q.peak_size(), 3u);
}

TEST(EventQueue, SelfPerpetuatingChainBounded) {
  EventQueue q;
  std::uint64_t count = 0;
  std::function<void()> tick = [&] {
    if (++count < 1000) {
      q.schedule_in(0.001, tick);
    }
  };
  q.schedule_at(0.0, tick);
  q.run();
  EXPECT_EQ(count, 1000u);
  EXPECT_NEAR(q.now(), 0.999, 1e-9);
}

}  // namespace
}  // namespace optiplet::sim
