#include "sim/cycle_engine.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

namespace optiplet::sim {
namespace {

/// Component that records the phase interleaving it observes.
class ProbeComponent : public CycleComponent {
 public:
  explicit ProbeComponent(std::vector<std::string>& log, std::string name)
      : log_(log), name_(std::move(name)) {}

  void evaluate(std::uint64_t) override { log_.push_back(name_ + ".eval"); }
  void commit(std::uint64_t) override { log_.push_back(name_ + ".commit"); }

 private:
  std::vector<std::string>& log_;
  std::string name_;
};

TEST(CycleEngine, RejectsNonPositiveFrequency) {
  EXPECT_THROW(CycleEngine(0.0), std::invalid_argument);
  EXPECT_THROW(CycleEngine(-1.0), std::invalid_argument);
}

TEST(CycleEngine, AllEvaluatesPrecedeAllCommits) {
  std::vector<std::string> log;
  ProbeComponent a(log, "a");
  ProbeComponent b(log, "b");
  CycleEngine engine(1e9);
  engine.register_component(a);
  engine.register_component(b);
  engine.step();
  ASSERT_EQ(log.size(), 4u);
  EXPECT_EQ(log[0], "a.eval");
  EXPECT_EQ(log[1], "b.eval");
  EXPECT_EQ(log[2], "a.commit");
  EXPECT_EQ(log[3], "b.commit");
}

TEST(CycleEngine, RunAdvancesCycleCount) {
  CycleEngine engine(2e9);
  engine.run(100);
  EXPECT_EQ(engine.cycle(), 100u);
}

TEST(CycleEngine, TimeTracksFrequency) {
  CycleEngine engine(2e9);  // 2 GHz -> 0.5 ns per cycle
  engine.run(1000);
  EXPECT_NEAR(engine.time_s(), 500e-9, 1e-15);
}

TEST(CycleEngine, RunUntilStopsOnPredicate) {
  CycleEngine engine(1e9);
  int counter = 0;
  const std::uint64_t ran =
      engine.run_until([&] { return ++counter > 10; }, 1000);
  EXPECT_EQ(ran, 10u);
}

TEST(CycleEngine, RunUntilHonoursMaxCycles) {
  CycleEngine engine(1e9);
  const std::uint64_t ran = engine.run_until([] { return false; }, 42);
  EXPECT_EQ(ran, 42u);
  EXPECT_EQ(engine.cycle(), 42u);
}

}  // namespace
}  // namespace optiplet::sim
