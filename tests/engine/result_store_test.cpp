#include "engine/result_store.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "util/csv.hpp"

namespace optiplet::engine {
namespace {

ScenarioResult make_result(const std::string& model,
                           accel::Architecture arch, double latency,
                           double power, double epb) {
  ScenarioResult r;
  r.spec.model = model;
  r.spec.arch = arch;
  r.run.model_name = model;
  r.run.arch = arch;
  r.run.latency_s = latency;
  r.run.average_power_w = power;
  r.run.epb_j_per_bit = epb;
  return r;
}

TEST(ResultStore, ByArchitectureAveragesInFirstSeenOrder) {
  ResultStore store;
  store.add(make_result("LeNet5", accel::Architecture::kSiph2p5D, 1.0, 10.0,
                        1e-12));
  store.add(make_result("VGG16", accel::Architecture::kSiph2p5D, 3.0, 30.0,
                        3e-12));
  store.add(make_result("LeNet5", accel::Architecture::kElec2p5D, 5.0, 50.0,
                        5e-12));
  const auto averages = store.by_architecture();
  ASSERT_EQ(averages.size(), 2u);
  EXPECT_EQ(averages[0].platform,
            accel::to_string(accel::Architecture::kSiph2p5D));
  EXPECT_DOUBLE_EQ(averages[0].latency_s, 2.0);
  EXPECT_DOUBLE_EQ(averages[0].power_w, 20.0);
  EXPECT_DOUBLE_EQ(averages[0].epb_j_per_bit, 2e-12);
  EXPECT_EQ(averages[1].platform,
            accel::to_string(accel::Architecture::kElec2p5D));
  EXPECT_DOUBLE_EQ(averages[1].latency_s, 5.0);
}

TEST(ResultStore, BestByMinimizesWithDeterministicTies) {
  ResultStore store;
  EXPECT_EQ(store.best_by([](const ScenarioResult& r) {
    return r.run.latency_s;
  }), nullptr);
  store.add(make_result("A", accel::Architecture::kSiph2p5D, 2.0, 1, 1));
  store.add(make_result("B", accel::Architecture::kSiph2p5D, 1.0, 1, 1));
  store.add(make_result("C", accel::Architecture::kSiph2p5D, 1.0, 1, 1));
  const auto* best = store.best_by(
      [](const ScenarioResult& r) { return r.run.latency_s; });
  ASSERT_NE(best, nullptr);
  EXPECT_EQ(best->spec.model, "B");  // earliest of the tied minima
}

TEST(ResultStore, CsvRowsMatchHeaderWidth) {
  const auto header = ResultStore::csv_header();
  const auto row = ResultStore::csv_row(
      make_result("LeNet5", accel::Architecture::kSiph2p5D, 1.0, 2.0, 3.0));
  EXPECT_EQ(row.size(), header.size());
}

TEST(ResultStore, WriteCsvProducesWellFormedFile) {
  ResultStore store;
  store.add(make_result("LeNet5", accel::Architecture::kSiph2p5D, 1.0, 10.0,
                        1e-12));
  store.add(make_result("VGG16", accel::Architecture::kElec2p5D, 3.0, 30.0,
                        3e-12));
  const std::string path = "result_store_test_out.csv";
  ASSERT_TRUE(store.write_csv(path));
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty()) {
      lines.push_back(line);
    }
  }
  in.close();
  std::remove(path.c_str());
  ASSERT_EQ(lines.size(), 3u);  // header + 2 rows
  const auto count_commas = [](const std::string& s) {
    std::size_t n = 0;
    for (const char c : s) {
      n += c == ',' ? 1 : 0;
    }
    return n;
  };
  const std::size_t header_commas = count_commas(lines[0]);
  EXPECT_EQ(header_commas, ResultStore::csv_header().size() - 1);
  EXPECT_EQ(count_commas(lines[1]), header_commas);
  EXPECT_EQ(count_commas(lines[2]), header_commas);
  EXPECT_NE(lines[1].find("LeNet5"), std::string::npos);
  EXPECT_NE(lines[2].find("VGG16"), std::string::npos);
}

TEST(ResultStore, WriteCsvFailsOnUnwritablePath) {
  ResultStore store;
  EXPECT_FALSE(store.write_csv("/no/such/dir/out.csv"));
}

TEST(ResultStore, CsvWriteParseRoundTrip) {
  // The serving CSV consumers (trace tooling, plot scripts) parse what
  // write_csv emits; pin the full write -> parse_csv round trip, including
  // a serving row and an override string containing no quoting hazards.
  ResultStore store;
  auto plain = make_result("LeNet5", accel::Architecture::kSiph2p5D, 1.5e-3,
                           12.0, 2e-12);
  plain.spec.overrides = {{"resipi.epoch_s", 5e-6}};
  store.add(plain);

  auto serving = make_result("LeNet5+VGG16",
                             accel::Architecture::kSiph2p5D, 2e-3, 15.0, 0);
  serving.spec.serving = serve::ServingSpec{};
  serving.spec.serving->tenant_mix = "LeNet5+VGG16";
  serving.spec.serving->arrival_rps = 450.0;
  serving.spec.serving->policy = serve::BatchPolicy::kDeadline;
  serve::ServingMetrics metrics;
  metrics.throughput_rps = 440.0;
  metrics.p50_s = 1e-3;
  metrics.p95_s = 2e-3;
  metrics.p99_s = 3e-3;
  metrics.sla_violation_rate = 0.125;
  metrics.energy_per_request_j = 7e-4;
  metrics.utilization = 0.5;
  metrics.mean_batch = 3.5;
  serving.serving = metrics;
  store.add(serving);

  const std::string path =
      ::testing::TempDir() + "result_store_roundtrip.csv";
  ASSERT_TRUE(store.write_csv(path));
  const auto doc = util::read_csv_file(path);
  std::remove(path.c_str());
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->header, ResultStore::csv_header());
  ASSERT_EQ(doc->rows.size(), 2u);
  for (const auto& row : doc->rows) {
    EXPECT_EQ(row.size(), doc->header.size());
  }

  const auto cell = [&](std::size_t row, const std::string& column) {
    return doc->rows[row][*doc->column(column)];
  };
  EXPECT_EQ(cell(0, "model"), "LeNet5");
  EXPECT_EQ(cell(0, "serving"), "0");
  EXPECT_EQ(cell(0, "throughput_rps"), "");
  EXPECT_EQ(cell(0, "overrides"), "resipi.epoch_s=5e-06");
  EXPECT_EQ(cell(1, "model"), "LeNet5+VGG16");
  EXPECT_EQ(cell(1, "serving"), "1");
  EXPECT_EQ(cell(1, "batch_policy"), "deadline");
  EXPECT_DOUBLE_EQ(std::stod(cell(1, "arrival_rps")), 450.0);
  EXPECT_DOUBLE_EQ(std::stod(cell(1, "throughput_rps")), 440.0);
  EXPECT_DOUBLE_EQ(std::stod(cell(1, "p99_s")), 3e-3);
  EXPECT_DOUBLE_EQ(std::stod(cell(1, "sla_violation_rate")), 0.125);
  EXPECT_DOUBLE_EQ(std::stod(cell(1, "energy_per_request_j")), 7e-4);
}

}  // namespace
}  // namespace optiplet::engine
