#include "engine/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <stdexcept>
#include <vector>

namespace optiplet::engine {
namespace {

TEST(ThreadPool, ResolveThreadsZeroMeansHardwareConcurrency) {
  EXPECT_GE(ThreadPool::resolve_threads(0), 1u);
  EXPECT_EQ(ThreadPool::resolve_threads(3), 3u);
}

TEST(ThreadPool, SpawnsRequestedWorkerCount) {
  ThreadPool pool(2);
  EXPECT_EQ(pool.size(), 2u);
}

TEST(ThreadPool, ReturnsTaskResultsThroughFutures) {
  ThreadPool pool(4);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 64; ++i) {
    futures.push_back(pool.submit([i] { return i * i; }));
  }
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(futures[static_cast<std::size_t>(i)].get(), i * i);
  }
}

TEST(ThreadPool, TaskExceptionsPropagateThroughFutures) {
  ThreadPool pool(2);
  auto bad = pool.submit(
      []() -> int { throw std::runtime_error("scenario blew up"); });
  auto good = pool.submit([] { return 7; });
  EXPECT_THROW(bad.get(), std::runtime_error);
  // A throwing task must not take its worker down.
  EXPECT_EQ(good.get(), 7);
}

TEST(ThreadPool, DestructorCompletesAllSubmittedWork) {
  std::atomic<int> completed{0};
  {
    ThreadPool pool(3);
    for (int i = 0; i < 100; ++i) {
      (void)pool.submit([&completed] { ++completed; });
    }
  }  // join
  EXPECT_EQ(completed.load(), 100);
}

TEST(ThreadPool, SingleWorkerRunsTasksInSubmissionOrder) {
  ThreadPool pool(1);
  std::vector<int> order;
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 10; ++i) {
    futures.push_back(pool.submit([&order, i] { order.push_back(i); }));
  }
  for (auto& f : futures) {
    f.get();
  }
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
  }
}

}  // namespace
}  // namespace optiplet::engine
