#include "engine/sweep_runner.hpp"

#include <gtest/gtest.h>

#include <set>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/dse.hpp"
#include "core/report.hpp"
#include "core/system_simulator.hpp"
#include "dnn/zoo.hpp"
#include "engine/thread_pool.hpp"
#include "noc/photonic_interposer.hpp"

namespace optiplet::engine {
namespace {

ScenarioGrid small_grid() {
  ScenarioGrid grid;
  grid.models = {"LeNet5", "MobileNetV2"};
  grid.architectures = {accel::Architecture::kMonolithicCrossLight,
                        accel::Architecture::kSiph2p5D};
  grid.wavelengths = {32, 64};
  return grid;
}

void expect_identical(const std::vector<ScenarioResult>& a,
                      const std::vector<ScenarioResult>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].spec.key(), b[i].spec.key()) << "index " << i;
    EXPECT_EQ(a[i].run.model_name, b[i].run.model_name);
    EXPECT_EQ(a[i].run.arch, b[i].run.arch);
    // Bit-identical, not approximately equal: the parallel path must be
    // the same computation, merely scheduled differently.
    EXPECT_EQ(a[i].run.latency_s, b[i].run.latency_s) << "index " << i;
    EXPECT_EQ(a[i].run.energy_j, b[i].run.energy_j) << "index " << i;
    EXPECT_EQ(a[i].run.average_power_w, b[i].run.average_power_w);
    EXPECT_EQ(a[i].run.epb_j_per_bit, b[i].run.epb_j_per_bit);
    EXPECT_EQ(a[i].run.traffic_bits, b[i].run.traffic_bits);
    EXPECT_EQ(a[i].run.layers.size(), b[i].run.layers.size());
  }
}

TEST(SweepRunner, DeterministicAcrossThreadCounts) {
  const auto base = core::default_system_config();
  const auto grid = small_grid();
  const std::size_t hw = ThreadPool::resolve_threads(0);
  std::vector<std::size_t> counts{1, 2, hw};
  std::vector<std::vector<ScenarioResult>> outcomes;
  for (const std::size_t threads : counts) {
    SweepRunner runner(base, SweepOptions{.threads = threads});
    outcomes.push_back(runner.run(grid));
    EXPECT_EQ(runner.threads(), threads);
  }
  expect_identical(outcomes[0], outcomes[1]);
  expect_identical(outcomes[0], outcomes[2]);
}

TEST(SweepRunner, CycleFidelityDeterministicAcrossThreadCounts) {
  // The cycle-accurate photonic path drives ReSiPI epochs from simulated
  // traffic; its per-run state (controller activation, PCM stalls) must
  // stay confined to the scenario so results are bit-identical no matter
  // how the pool schedules them.
  ScenarioGrid grid;
  grid.models = {"LeNet5", "MobileNetV2"};
  grid.architectures = {accel::Architecture::kSiph2p5D};
  grid.fidelities = {core::Fidelity::kCycleAccurate};
  const auto base = core::default_system_config();
  const std::size_t hw = ThreadPool::resolve_threads(0);
  std::vector<std::vector<ScenarioResult>> outcomes;
  for (const std::size_t threads : {std::size_t{1}, std::size_t{2}, hw}) {
    SweepRunner runner(base, SweepOptions{.threads = threads});
    outcomes.push_back(runner.run(grid));
  }
  expect_identical(outcomes[0], outcomes[1]);
  expect_identical(outcomes[0], outcomes[2]);
  for (std::size_t i = 0; i < outcomes[0].size(); ++i) {
    // Epoch-path observables, bit-identical too.
    EXPECT_EQ(outcomes[0][i].run.resipi_reconfigurations,
              outcomes[1][i].run.resipi_reconfigurations);
    EXPECT_EQ(outcomes[0][i].run.resipi_reconfigurations,
              outcomes[2][i].run.resipi_reconfigurations);
    EXPECT_EQ(outcomes[0][i].run.mean_active_gateways,
              outcomes[1][i].run.mean_active_gateways);
    EXPECT_EQ(outcomes[0][i].run.mean_active_gateways,
              outcomes[2][i].run.mean_active_gateways);
  }
}

TEST(SweepRunner, SampledFidelityDeterministicAcrossThreadCounts) {
  // The sampled window plan is seeded per scenario (core::sampled_layer_mask
  // hashes seed/salt/layer count), so stitched results must be bit-identical
  // however the pool schedules the mix of sampled and pure scenarios.
  ScenarioGrid grid;
  grid.models = {"LeNet5", "MobileNetV2"};
  grid.architectures = {accel::Architecture::kSiph2p5D};
  core::FidelitySpec sampled(core::Fidelity::kSampled);
  sampled.windows = 4;
  sampled.seed = 3;
  grid.fidelities = {core::Fidelity::kAnalytical, sampled};
  const auto base = core::default_system_config();
  const std::size_t hw = ThreadPool::resolve_threads(0);
  std::vector<std::vector<ScenarioResult>> outcomes;
  for (const std::size_t threads : {std::size_t{1}, std::size_t{2}, hw}) {
    SweepRunner runner(base, SweepOptions{.threads = threads});
    outcomes.push_back(runner.run(grid));
  }
  expect_identical(outcomes[0], outcomes[1]);
  expect_identical(outcomes[0], outcomes[2]);
  bool saw_sampled = false;
  for (std::size_t i = 0; i < outcomes[0].size(); ++i) {
    for (const auto* other : {&outcomes[1], &outcomes[2]}) {
      EXPECT_EQ(outcomes[0][i].run.sampled_layers,
                (*other)[i].run.sampled_layers);
      EXPECT_EQ(outcomes[0][i].run.correction_factor,
                (*other)[i].run.correction_factor);
      EXPECT_EQ(outcomes[0][i].run.resipi_reconfigurations,
                (*other)[i].run.resipi_reconfigurations);
      EXPECT_EQ(outcomes[0][i].run.mean_active_gateways,
                (*other)[i].run.mean_active_gateways);
    }
    saw_sampled |= outcomes[0][i].run.sampled_layers > 0;
  }
  EXPECT_TRUE(saw_sampled);
}

TEST(SweepRunner, SampledSpecsMemoizeLikeAnyOther) {
  // Equal FidelitySpecs name identical simulations, so a repeated sampled
  // spec is a cache hit, while changing any sampling knob is a distinct
  // scenario key (a different window plan is a different simulation).
  core::FidelitySpec sampled(core::Fidelity::kSampled);
  sampled.windows = 2;
  sampled.seed = 3;
  ScenarioSpec spec;
  spec.model = "LeNet5";
  spec.fidelity = sampled;
  ScenarioSpec reseeded = spec;
  reseeded.fidelity.seed = 4;
  SweepRunner runner(core::default_system_config(),
                     SweepOptions{.threads = 2});
  const auto results = runner.run({spec, spec, reseeded});
  ASSERT_EQ(results.size(), 3u);
  EXPECT_EQ(runner.cache_entries(), 2u);
  EXPECT_EQ(runner.cache_hits(), 1u);
  EXPECT_FALSE(results[0].from_cache);
  EXPECT_TRUE(results[1].from_cache);
  EXPECT_FALSE(results[2].from_cache);
  EXPECT_EQ(results[0].run.latency_s, results[1].run.latency_s);
}

TEST(SweepRunner, EvaluateMatchesDirectSimulatorRun) {
  const auto base = core::default_system_config();
  ScenarioSpec spec;
  spec.model = "LeNet5";
  spec.wavelengths = 32;
  spec.gateways_per_chiplet = 2;
  const auto engine_run = SweepRunner::evaluate(base, spec);

  core::SystemConfig cfg = base;
  spec.apply(cfg);
  const core::SystemSimulator sim(cfg);
  const auto direct = sim.run(dnn::zoo::by_name("LeNet5"), spec.arch);
  EXPECT_EQ(engine_run.latency_s, direct.latency_s);
  EXPECT_EQ(engine_run.energy_j, direct.energy_j);
  EXPECT_EQ(engine_run.epb_j_per_bit, direct.epb_j_per_bit);
}

TEST(SweepRunner, DuplicateSpecsHitTheCacheWithinABatch) {
  ScenarioSpec spec;
  spec.model = "LeNet5";
  SweepRunner runner(core::default_system_config(),
                     SweepOptions{.threads = 2});
  const auto results = runner.run({spec, spec, spec});
  ASSERT_EQ(results.size(), 3u);
  EXPECT_EQ(runner.cache_entries(), 1u);
  EXPECT_EQ(runner.cache_hits(), 2u);
  EXPECT_FALSE(results[0].from_cache);
  EXPECT_TRUE(results[1].from_cache);
  EXPECT_TRUE(results[2].from_cache);
  EXPECT_EQ(results[0].run.latency_s, results[1].run.latency_s);
  EXPECT_EQ(results[0].run.latency_s, results[2].run.latency_s);
}

TEST(SweepRunner, RepeatedRunsAreServedFromCache) {
  const auto grid = small_grid();
  SweepRunner runner(core::default_system_config(),
                     SweepOptions{.threads = 2});
  const auto first = runner.run(grid);
  const std::size_t simulated = runner.cache_entries();
  EXPECT_EQ(runner.cache_hits(), 0u);
  const auto second = runner.run(grid);
  EXPECT_EQ(runner.cache_entries(), simulated);  // nothing re-simulated
  EXPECT_EQ(runner.cache_hits(), first.size());
  for (const auto& r : second) {
    EXPECT_TRUE(r.from_cache);
  }
  expect_identical(first, second);
}

TEST(SweepRunner, ProgressReachesTotalAndIsMonotone) {
  const auto grid = small_grid();
  std::vector<std::pair<std::size_t, std::size_t>> calls;
  SweepOptions options;
  options.threads = 2;
  options.progress = [&calls](std::size_t done, std::size_t total) {
    calls.emplace_back(done, total);
  };
  SweepRunner runner(core::default_system_config(), options);
  const auto results = runner.run(grid);
  ASSERT_FALSE(calls.empty());
  std::size_t previous = 0;
  for (const auto& [done, total] : calls) {
    EXPECT_EQ(total, results.size());
    EXPECT_GT(done, previous);
    previous = done;
  }
  EXPECT_EQ(calls.back().first, results.size());
}

TEST(SweepRunner, ScenarioProgressReportsKeysWallClockAndCacheHits) {
  const auto grid = small_grid();
  SweepOptions options;
  options.threads = 2;
  std::vector<ScenarioProgress> calls;
  options.scenario_progress = [&calls](const ScenarioProgress& p) {
    calls.push_back(p);
  };
  SweepRunner runner(core::default_system_config(), options);
  const auto results = runner.run(grid);
  ASSERT_EQ(calls.size(), results.size());
  std::size_t previous = 0;
  std::set<std::string> keys;
  for (const ScenarioProgress& p : calls) {
    EXPECT_EQ(p.total, results.size());
    EXPECT_GT(p.done, previous);
    previous = p.done;
    EXPECT_FALSE(p.key.empty());
    EXPECT_FALSE(p.from_cache);  // a fresh runner simulates everything
    EXPECT_GE(p.wall_s, 0.0);
    keys.insert(p.key);
  }
  // Every scenario key reported exactly once.
  EXPECT_EQ(keys.size(), results.size());
  for (const auto& r : results) {
    EXPECT_EQ(keys.count(r.spec.key()), 1u) << r.spec.key();
    EXPECT_GE(r.eval_wall_s, 0.0);
  }
}

TEST(SweepRunner, ScenarioProgressReportsUpfrontCacheHitsPerKey) {
  const auto grid = small_grid();
  std::vector<ScenarioProgress> calls;
  SweepOptions options;
  options.threads = 2;
  options.scenario_progress = [&calls](const ScenarioProgress& p) {
    calls.push_back(p);
  };
  SweepRunner runner(core::default_system_config(), options);
  const auto first = runner.run(grid);  // warm the memo
  calls.clear();

  // Every scenario of the repeat resolves from the cross-run memo before
  // the pool spins up — and each must still report its own key (a single
  // bulk "done += n" would hide which scenarios were memoized).
  const auto second = runner.run(grid);
  ASSERT_EQ(calls.size(), second.size());
  for (std::size_t i = 0; i < calls.size(); ++i) {
    EXPECT_TRUE(calls[i].from_cache) << calls[i].key;
    EXPECT_DOUBLE_EQ(calls[i].wall_s, 0.0);
    EXPECT_EQ(calls[i].done, i + 1);
    EXPECT_EQ(calls[i].key, first[i].spec.key());
  }

  // In-batch duplicates report alongside their one evaluation.
  calls.clear();
  ScenarioSpec spec;
  spec.model = "LeNet5";
  SweepRunner dup_runner(core::default_system_config(), options);
  const auto dups = dup_runner.run({spec, spec, spec});
  ASSERT_EQ(dups.size(), 3u);
  ASSERT_FALSE(calls.empty());
  EXPECT_FALSE(calls.front().from_cache);
  EXPECT_EQ(calls.front().key, dups[0].spec.key());
  EXPECT_EQ(calls.back().done, 3u);
}

TEST(SweepRunner, ScenarioExceptionsPropagateAndRunnerSurvives) {
  ScenarioSpec bad;
  bad.model = "NoSuchNet";
  ScenarioSpec good;
  good.model = "LeNet5";
  SweepRunner runner(core::default_system_config(),
                     SweepOptions{.threads = 2});
  EXPECT_THROW((void)runner.run({good, bad}), std::invalid_argument);
  // The failure neither poisons the pool nor caches a bogus result.
  const auto results = runner.run({good});
  ASSERT_EQ(results.size(), 1u);
  EXPECT_GT(results[0].run.latency_s, 0.0);
}

/// Serial reference implementation of the pre-engine core::explore loop —
/// the parity oracle for the parallel version.
std::vector<core::DsePoint> serial_explore_reference(
    const core::DseOptions& options, const core::SystemConfig& base) {
  std::vector<dnn::Model> models;
  for (const auto& name : options.models) {
    models.push_back(dnn::zoo::by_name(name));
  }
  std::vector<core::DsePoint> points;
  for (const std::size_t wavelengths : options.wavelengths) {
    for (const std::size_t gateways : options.gateways_per_chiplet) {
      if (gateways == 0 || wavelengths % gateways != 0) {
        continue;
      }
      for (const auto modulation : options.modulations) {
        core::SystemConfig cfg = base;
        cfg.photonic.total_wavelengths = wavelengths;
        cfg.photonic.gateways_per_chiplet = gateways;
        cfg.photonic.modulation = modulation;
        const noc::PhotonicInterposer probe(cfg.photonic, cfg.tech.photonic);
        if (!probe.link_budget_feasible()) {
          continue;
        }
        const core::SystemSimulator sim(cfg);
        std::vector<core::RunResult> runs;
        for (const auto& model : models) {
          runs.push_back(sim.run(model, options.arch));
        }
        const auto avg = core::average_runs("dse", runs);
        core::DsePoint p;
        p.wavelengths = wavelengths;
        p.gateways_per_chiplet = gateways;
        p.modulation = modulation;
        p.latency_s = avg.latency_s;
        p.power_w = avg.power_w;
        p.epb_j_per_bit = avg.epb_j_per_bit;
        points.push_back(p);
      }
    }
  }
  core::mark_pareto(points);
  return points;
}

TEST(SweepRunner, ParallelExploreMatchesSerialReferencePointForPoint) {
  core::DseOptions options;
  options.wavelengths = {16, 32, 64};
  options.gateways_per_chiplet = {2, 4};
  options.modulations = {photonics::ModulationFormat::kOok,
                         photonics::ModulationFormat::kPam4};
  options.models = {"LeNet5"};
  const auto base = core::default_system_config();

  const auto reference = serial_explore_reference(options, base);
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    options.threads = threads;
    const auto parallel = core::explore(options, base);
    ASSERT_EQ(parallel.size(), reference.size()) << threads << " threads";
    for (std::size_t i = 0; i < reference.size(); ++i) {
      EXPECT_EQ(parallel[i].wavelengths, reference[i].wavelengths);
      EXPECT_EQ(parallel[i].gateways_per_chiplet,
                reference[i].gateways_per_chiplet);
      EXPECT_EQ(parallel[i].modulation, reference[i].modulation);
      EXPECT_EQ(parallel[i].latency_s, reference[i].latency_s);
      EXPECT_EQ(parallel[i].power_w, reference[i].power_w);
      EXPECT_EQ(parallel[i].epb_j_per_bit, reference[i].epb_j_per_bit);
      EXPECT_EQ(parallel[i].pareto, reference[i].pareto);
    }
  }
}

}  // namespace
}  // namespace optiplet::engine
