#include "engine/scenario.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>

namespace optiplet::engine {
namespace {

ScenarioSpec lenet_spec() {
  ScenarioSpec spec;
  spec.model = "LeNet5";
  return spec;
}

TEST(ScenarioSpec, KeyIsCanonicalUnderOverrideOrder) {
  ScenarioSpec a = lenet_spec();
  a.overrides = {{"resipi.epoch_s", 5e-6}, {"idle_power_fraction", 0.05}};
  ScenarioSpec b = lenet_spec();
  b.overrides = {{"idle_power_fraction", 0.05}, {"resipi.epoch_s", 5e-6}};
  EXPECT_EQ(a.key(), b.key());
  EXPECT_EQ(a.hash(), b.hash());
}

TEST(ScenarioSpec, KeyDistinguishesEveryField) {
  const ScenarioSpec base = lenet_spec();
  ScenarioSpec other = base;
  other.model = "VGG16";
  EXPECT_NE(base.key(), other.key());
  other = base;
  other.arch = accel::Architecture::kElec2p5D;
  EXPECT_NE(base.key(), other.key());
  other = base;
  other.batch_size = 4;
  EXPECT_NE(base.key(), other.key());
  other = base;
  other.wavelengths = 32;
  EXPECT_NE(base.key(), other.key());
  other = base;
  other.gateways_per_chiplet = 2;
  EXPECT_NE(base.key(), other.key());
  other = base;
  other.modulation = photonics::ModulationFormat::kPam4;
  EXPECT_NE(base.key(), other.key());
  other = base;
  other.fidelity = core::Fidelity::kCycleAccurate;
  EXPECT_NE(base.key(), other.key());
  other = base;
  other.overrides = {{"resipi.epoch_s", 5e-6}};
  EXPECT_NE(base.key(), other.key());
}

TEST(ScenarioSpec, KeyTracksEffectiveValueOfDuplicateOverrideKeys) {
  // apply() is last-write-wins, so specs listing the same override key
  // twice in different orders are different configurations and must not
  // share a cache key.
  ScenarioSpec a = lenet_spec();
  a.overrides = {{"resipi.epoch_s", 1e-5}, {"resipi.epoch_s", 2e-5}};
  ScenarioSpec b = lenet_spec();
  b.overrides = {{"resipi.epoch_s", 2e-5}, {"resipi.epoch_s", 1e-5}};
  EXPECT_NE(a.key(), b.key());
  // ...and the duplicate collapses to the same key as its effective form.
  ScenarioSpec c = lenet_spec();
  c.overrides = {{"resipi.epoch_s", 2e-5}};
  EXPECT_EQ(a.key(), c.key());
}

TEST(ScenarioSpec, ApplyImprintsConfig) {
  ScenarioSpec spec = lenet_spec();
  spec.batch_size = 4;
  spec.wavelengths = 32;
  spec.gateways_per_chiplet = 2;
  spec.modulation = photonics::ModulationFormat::kPam4;
  spec.fidelity = core::Fidelity::kCycleAccurate;
  spec.overrides = {{"resipi.epoch_s", 5e-6}};
  core::SystemConfig cfg = core::default_system_config();
  spec.apply(cfg);
  EXPECT_EQ(cfg.batch_size, 4u);
  EXPECT_EQ(cfg.photonic.total_wavelengths, 32u);
  EXPECT_EQ(cfg.photonic.gateways_per_chiplet, 2u);
  EXPECT_EQ(cfg.photonic.modulation, photonics::ModulationFormat::kPam4);
  EXPECT_EQ(cfg.fidelity, core::Fidelity::kCycleAccurate);
  EXPECT_DOUBLE_EQ(cfg.resipi.epoch_s, 5e-6);
}

TEST(ScenarioSpec, ApplyThrowsOnUnknownOverride) {
  ScenarioSpec spec = lenet_spec();
  spec.overrides = {{"no.such.knob", 1.0}};
  core::SystemConfig cfg = core::default_system_config();
  EXPECT_THROW(spec.apply(cfg), std::invalid_argument);
}

TEST(Overrides, RegistryIsSortedAndRoundTrips) {
  const auto keys = override_keys();
  ASSERT_FALSE(keys.empty());
  EXPECT_TRUE(std::is_sorted(keys.begin(), keys.end()));
  core::SystemConfig cfg = core::default_system_config();
  for (const auto& key : keys) {
    EXPECT_TRUE(apply_override(cfg, key, 1.0)) << key;
  }
  EXPECT_FALSE(apply_override(cfg, "no.such.knob", 1.0));
}

TEST(Feasibility, RequiresGatewayDivisibility) {
  ScenarioSpec spec = lenet_spec();
  const auto base = core::default_system_config();
  spec.wavelengths = 64;
  spec.gateways_per_chiplet = 3;
  EXPECT_FALSE(feasible(spec, base));
  spec.gateways_per_chiplet = 0;
  EXPECT_FALSE(feasible(spec, base));
  spec.gateways_per_chiplet = 4;
  EXPECT_TRUE(feasible(spec, base));
}

TEST(Feasibility, LinkBudgetOnlyGatesSiph) {
  // 128 wavelengths over 4 gateways: 32-channel MRG rows exceed the ring
  // FSR, so the SiPh link budget cannot close.
  ScenarioSpec spec = lenet_spec();
  spec.wavelengths = 128;
  spec.gateways_per_chiplet = 4;
  const auto base = core::default_system_config();
  spec.arch = accel::Architecture::kSiph2p5D;
  EXPECT_FALSE(feasible(spec, base));
  spec.arch = accel::Architecture::kElec2p5D;
  EXPECT_TRUE(feasible(spec, base));
}

TEST(ScenarioGrid, EmptyAxesResolveToBaseDefaults) {
  ScenarioGrid grid;
  grid.models = {"LeNet5"};
  const auto base = core::default_system_config();
  const auto specs = grid.expand(base);
  ASSERT_EQ(specs.size(), 1u);
  EXPECT_EQ(specs[0].model, "LeNet5");
  EXPECT_EQ(specs[0].arch, accel::Architecture::kSiph2p5D);
  EXPECT_EQ(specs[0].batch_size, base.batch_size);
  EXPECT_EQ(specs[0].wavelengths, base.photonic.total_wavelengths);
  EXPECT_EQ(specs[0].gateways_per_chiplet,
            base.photonic.gateways_per_chiplet);
  EXPECT_EQ(specs[0].modulation, base.photonic.modulation);
}

TEST(ScenarioGrid, EmptyModelAxisMeansAllFive) {
  ScenarioGrid grid;
  const auto specs = grid.expand(core::default_system_config());
  EXPECT_EQ(specs.size(), 5u);
}

TEST(ScenarioGrid, ExpansionIsArchitectureMajorModelMinor) {
  ScenarioGrid grid;
  grid.models = {"LeNet5", "VGG16"};
  grid.architectures = {accel::Architecture::kMonolithicCrossLight,
                        accel::Architecture::kSiph2p5D};
  const auto specs = grid.expand(core::default_system_config());
  ASSERT_EQ(specs.size(), 4u);
  EXPECT_EQ(specs[0].arch, accel::Architecture::kMonolithicCrossLight);
  EXPECT_EQ(specs[0].model, "LeNet5");
  EXPECT_EQ(specs[1].arch, accel::Architecture::kMonolithicCrossLight);
  EXPECT_EQ(specs[1].model, "VGG16");
  EXPECT_EQ(specs[2].arch, accel::Architecture::kSiph2p5D);
  EXPECT_EQ(specs[2].model, "LeNet5");
  EXPECT_EQ(specs[3].arch, accel::Architecture::kSiph2p5D);
  EXPECT_EQ(specs[3].model, "VGG16");
}

TEST(ScenarioGrid, FiltersInfeasibleShapes) {
  ScenarioGrid grid;
  grid.models = {"LeNet5"};
  grid.wavelengths = {64, 128};
  grid.gateways_per_chiplet = {4};
  EXPECT_EQ(grid.raw_size(), 2u);
  const auto specs = grid.expand(core::default_system_config());
  ASSERT_EQ(specs.size(), 1u);
  EXPECT_EQ(specs[0].wavelengths, 64u);
}

TEST(ScenarioGrid, OverrideAxesAreCartesian) {
  ScenarioGrid grid;
  grid.models = {"LeNet5"};
  grid.batch_sizes = {1, 2};
  grid.override_axes = {{"resipi.epoch_s", {5e-6, 1e-5, 2e-5}}};
  EXPECT_EQ(grid.raw_size(), 6u);
  const auto specs = grid.expand(core::default_system_config());
  ASSERT_EQ(specs.size(), 6u);
  // Batch is outer, override axis inner.
  EXPECT_EQ(specs[0].batch_size, 1u);
  EXPECT_DOUBLE_EQ(specs[0].overrides[0].second, 5e-6);
  EXPECT_DOUBLE_EQ(specs[2].overrides[0].second, 2e-5);
  EXPECT_EQ(specs[3].batch_size, 2u);
}

TEST(ScenarioGrid, RejectsUnknownOverrideKeyAndModel) {
  ScenarioGrid bad_key;
  bad_key.models = {"LeNet5"};
  bad_key.override_axes = {{"no.such.knob", {1.0}}};
  EXPECT_THROW(bad_key.expand(core::default_system_config()),
               std::invalid_argument);
  ScenarioGrid bad_model;
  bad_model.models = {"AlexNet"};
  EXPECT_THROW(bad_model.expand(core::default_system_config()),
               std::invalid_argument);
}

TEST(ScenarioGrid, RejectsDuplicateOverrideAxes) {
  ScenarioGrid grid;
  grid.models = {"LeNet5"};
  grid.override_axes = {{"resipi.epoch_s", {5e-6}},
                        {"resipi.epoch_s", {1e-5}}};
  EXPECT_THROW(grid.expand(core::default_system_config()),
               std::invalid_argument);
}

TEST(ParseHelpers, ArchitectureAndModulationAliases) {
  EXPECT_EQ(architecture_from_string("mono"),
            accel::Architecture::kMonolithicCrossLight);
  EXPECT_EQ(architecture_from_string("elec"),
            accel::Architecture::kElec2p5D);
  EXPECT_EQ(architecture_from_string("siph"),
            accel::Architecture::kSiph2p5D);
  EXPECT_EQ(architecture_from_string("2.5D-CrossLight-SiPh"),
            accel::Architecture::kSiph2p5D);
  EXPECT_FALSE(architecture_from_string("tpu").has_value());
  EXPECT_EQ(modulation_from_string("ook"), photonics::ModulationFormat::kOok);
  EXPECT_EQ(modulation_from_string("pam4"),
            photonics::ModulationFormat::kPam4);
  EXPECT_FALSE(modulation_from_string("qam64").has_value());
}

}  // namespace
}  // namespace optiplet::engine
