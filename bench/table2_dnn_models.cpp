/// \file table2_dnn_models.cpp
/// Regenerates **Table 2** of the paper: the five DNN models with CONV/FC
/// layer counts and parameter totals, computed live from the dnn::zoo
/// graph builders. The parameter counts match the paper (Keras "Total
/// params") exactly; tests/dnn/zoo_test.cpp asserts equality.

#include <array>
#include <cstdio>

#include "dnn/workload.hpp"
#include "dnn/zoo.hpp"
#include "util/table.hpp"

int main() {
  using namespace optiplet;

  std::printf("TABLE 2. CONSIDERED DNN MODELS (from dnn::zoo)\n\n");

  struct PaperRow {
    const char* name;
    std::uint64_t params;
  };
  constexpr std::array<PaperRow, 5> paper{{{"LeNet5", 62'006},
                                           {"ResNet50", 25'636'712},
                                           {"DenseNet121", 8'062'504},
                                           {"VGG16", 138'357'544},
                                           {"MobileNetV2", 3'538'984}}};

  util::TextTable t({"Model", "CONV layers", "FC layers", "Parameters",
                     "Paper", "Match", "MACs (G)", "Traffic (Mb)"});
  for (const auto& row : paper) {
    const dnn::Model m = dnn::zoo::by_name(row.name);
    const dnn::Workload w = dnn::compute_workload(m, 8);
    t.add_row({m.name(), std::to_string(m.conv_layer_count()),
               std::to_string(m.fc_layer_count()),
               util::format_grouped(m.total_params()),
               util::format_grouped(row.params),
               m.total_params() == row.params ? "EXACT" : "DIFFERS",
               util::format_fixed(
                   static_cast<double>(w.total_macs) / 1e9, 3),
               util::format_fixed(
                   static_cast<double>(w.total_traffic_bits()) / 1e6, 1)});
  }
  std::fputs(t.render().c_str(), stdout);
  std::printf(
      "\nMACs and per-inference traffic (weights + activations at 8 bits)\n"
      "are the derived quantities the accelerator simulations schedule.\n");
  return 0;
}
