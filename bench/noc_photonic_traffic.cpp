/// \file noc_photonic_traffic.cpp
/// Photonic counterpart of ablation A5: cycle-accurate latency vs offered
/// load on the SWMR/SWSR interposer (PhotonicCycleNet, Table-1 shape —
/// 64 wavelengths at 12 Gb/s OOK, 8 chiplets x 4 gateways at 2 GHz).
///
/// Two sections:
///   * gateways pinned (ReSiPI off): the pure medium — broadcast reads
///     contend for the shared wavelength set, writes ride the dedicated
///     return waveguides, so read latency climbs toward saturation while
///     write latency stays flat;
///   * ReSiPI on: the same read sweep with epoch-based gateway activation,
///     showing the provisioning transients (upshift lag, PCM write stalls)
///     the transaction-level model charges as a half-epoch constant.
///
/// Dumps noc_photonic_traffic.csv next to the binary for plotting.

#include <cstdio>

#include "noc/photonic_cycle_net.hpp"
#include "util/csv.hpp"
#include "util/require.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

namespace {

using namespace optiplet;

struct LoadPoint {
  double offered = 0.0;      ///< fraction of the SWMR medium bandwidth
  double mean_read = 0.0;    ///< mean read latency [cycles]
  double mean_write = 0.0;   ///< mean write latency [cycles]
  double delivered = 0.0;    ///< read bits delivered / SWMR medium capacity
  std::uint64_t reconfigurations = 0;
  std::uint64_t stall_cycles = 0;
};

/// Drive one load point: Bernoulli packet injection for `measure` cycles
/// (reads to uniform-random chiplets, writes from uniform-random chiplets
/// at half the read load), then a bounded drain.
LoadPoint run_point(double offered, bool resipi_enabled,
                    std::uint64_t measure_cycles) {
  noc::PhotonicCycleNetConfig cfg;
  cfg.resipi_enabled = resipi_enabled;
  cfg.resipi.epoch_s = 2.0 * units::us;  // a few epochs per window
  noc::PhotonicCycleNet net(cfg, power::PhotonicTech{});

  constexpr std::uint32_t kPacketBits = 16'384;  // one gateway buffer
  const double medium_bits_per_cycle =
      static_cast<double>(cfg.interposer.total_wavelengths) *
      net.bits_per_cycle_per_channel();
  // Packets per cycle that saturate the medium, scaled by the offered load.
  const double read_rate =
      offered * medium_bits_per_cycle / static_cast<double>(kPacketBits);
  const double write_rate = read_rate / 2.0;

  util::Xoshiro256 rng(0x5eed);
  for (std::uint64_t c = 0; c < measure_cycles; ++c) {
    if (rng.next_bool(read_rate)) {
      net.inject_read(rng.next_below(net.chiplet_count()), kPacketBits);
    }
    if (rng.next_bool(write_rate)) {
      net.inject_write(rng.next_below(net.chiplet_count()), kPacketBits);
    }
    net.step();
  }
  OPTIPLET_REQUIRE(net.run_until_drained(4'000'000),
                   "photonic traffic bench failed to drain");

  LoadPoint p;
  p.offered = offered;
  p.mean_read = net.stats().read_latency_cycles.mean();
  p.mean_write = net.stats().write_latency_cycles.mean();
  // Writes ride their own SWSR waveguides; only reads consume the shared
  // broadcast medium, so the delivered fraction counts read bits alone.
  p.delivered = static_cast<double>(net.stats().read_bits_delivered) /
                (static_cast<double>(net.cycle()) * medium_bits_per_cycle);
  p.reconfigurations = net.controller().reconfiguration_count();
  p.stall_cycles = net.stats().stall_cycles;
  return p;
}

}  // namespace

int main() {
  std::printf(
      "PHOTONIC NOC: cycle-accurate SWMR/SWSR interposer, latency vs "
      "offered load\n"
      "(64 wavelengths @ 12 Gb/s OOK, 8 chiplets x 4 gateways @ 2 GHz; "
      "16384-bit packets)\n\n");

  util::CsvWriter csv("noc_photonic_traffic.csv",
                      {"mode", "offered_fraction", "mean_read_cycles",
                       "mean_write_cycles", "delivered_fraction",
                       "reconfigurations", "stall_cycles"});
  const auto fmt = [](double v) { return util::format_fixed(v, 3); };

  constexpr double kRates[] = {0.05, 0.10, 0.20, 0.40, 0.60, 0.80, 0.95};

  util::TextTable pinned({"Offered (frac of SWMR bw)", "Read lat (cycles)",
                          "Write lat (cycles)", "Delivered (frac)"});
  for (const double rate : kRates) {
    const LoadPoint p = run_point(rate, /*resipi_enabled=*/false, 30'000);
    pinned.add_row({fmt(p.offered), util::format_fixed(p.mean_read, 1),
                    util::format_fixed(p.mean_write, 1), fmt(p.delivered)});
    csv.add_row({"pinned", fmt(p.offered),
                 util::format_fixed(p.mean_read, 1),
                 util::format_fixed(p.mean_write, 1), fmt(p.delivered),
                 std::to_string(p.reconfigurations),
                 std::to_string(p.stall_cycles)});
  }
  std::printf("Gateways pinned active (ReSiPI off):\n");
  std::fputs(pinned.render().c_str(), stdout);

  util::TextTable resipi({"Offered (frac of SWMR bw)", "Read lat (cycles)",
                          "Delivered (frac)", "PCMC writes",
                          "Stall cycles"});
  for (const double rate : kRates) {
    const LoadPoint p = run_point(rate, /*resipi_enabled=*/true, 30'000);
    resipi.add_row({fmt(p.offered), util::format_fixed(p.mean_read, 1),
                    fmt(p.delivered), std::to_string(p.reconfigurations),
                    std::to_string(p.stall_cycles)});
    csv.add_row({"resipi", fmt(p.offered),
                 util::format_fixed(p.mean_read, 1),
                 util::format_fixed(p.mean_write, 1), fmt(p.delivered),
                 std::to_string(p.reconfigurations),
                 std::to_string(p.stall_cycles)});
  }
  std::printf("\nReSiPI epoch-driven activation (2 us epochs):\n");
  std::fputs(resipi.render().c_str(), stdout);

  std::printf(
      "\nReading: reads share the broadcast medium, so their latency climbs\n"
      "with load while the dedicated SWSR write channels stay near\n"
      "zero-load; with ReSiPI on, low loads run on fewer gateways (higher\n"
      "latency, lower static power) and reconfiguration stalls appear as\n"
      "epoch-boundary latency spikes the analytical model cannot see.\n"
      "\nSeries written to noc_photonic_traffic.csv\n");
  return 0;
}
