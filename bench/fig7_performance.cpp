/// \file fig7_performance.cpp
/// Regenerates **Fig. 7** of the paper: per-model (a) normalized power,
/// (b) normalized total latency, and (c) normalized energy-per-bit for the
/// three architectures, normalized to monolithic CrossLight per model.
/// Also dumps fig7.csv next to the binary for plotting.

#include <cstdio>
#include <map>
#include <vector>

#include "core/report.hpp"
#include "dnn/zoo.hpp"
#include "engine/scenario.hpp"
#include "engine/sweep_runner.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

int main() {
  using namespace optiplet;
  using accel::Architecture;

  // (architecture x model) grid, evaluated in parallel by the sweep
  // engine; expansion order is architecture-major, model-minor.
  engine::ScenarioGrid grid;
  grid.architectures = {Architecture::kMonolithicCrossLight,
                        Architecture::kElec2p5D, Architecture::kSiph2p5D};
  engine::SweepRunner runner(core::default_system_config());
  const auto results = runner.run(grid);
  std::vector<core::RunResult> runs;
  runs.reserve(results.size());
  for (const auto& r : results) {
    runs.push_back(r.run);
  }
  const auto points = core::normalize_to_monolithic(runs);

  const auto series = [&](Architecture arch, auto metric) {
    std::map<std::string, double> values;
    for (const auto& p : points) {
      if (p.arch == arch) {
        values[p.model] = metric(p);
      }
    }
    return values;
  };

  const auto print_panel = [&](const char* title, auto metric) {
    std::printf("%s\n", title);
    util::TextTable t({"Model", "CrossLight", "2.5D-Elec", "2.5D-SiPh"});
    for (const auto& name : dnn::zoo::model_names()) {
      t.add_row(
          {name, "1.000",
           util::format_fixed(
               series(Architecture::kElec2p5D, metric).at(name), 3),
           util::format_fixed(
               series(Architecture::kSiph2p5D, metric).at(name), 3)});
    }
    std::fputs(t.render().c_str(), stdout);
    std::printf("\n");
  };

  std::printf(
      "FIG. 7. PERFORMANCE ANALYSIS (normalized to monolithic CrossLight "
      "per model)\n\n");
  print_panel("(a) Normalized power consumption",
              [](const core::NormalizedPoint& p) { return p.power; });
  print_panel("(b) Normalized total latency",
              [](const core::NormalizedPoint& p) { return p.latency; });
  print_panel("(c) Normalized energy-per-bit",
              [](const core::NormalizedPoint& p) { return p.epb; });

  std::printf("Absolute values per (model, architecture):\n");
  util::TextTable abs({"Model", "Architecture", "Power (W)", "Latency (ms)",
                       "EPB (pJ/bit)", "Mean active gateways"});
  for (const auto& r : runs) {
    abs.add_row({r.model_name, accel::to_string(r.arch),
                 util::format_fixed(r.average_power_w, 2),
                 util::format_fixed(r.latency_s * 1e3, 4),
                 util::format_fixed(r.epb_j_per_bit * 1e12, 1),
                 util::format_fixed(r.mean_active_gateways, 1)});
  }
  std::fputs(abs.render().c_str(), stdout);

  const auto fmt = [](double v) { return util::format_general(v); };
  util::CsvWriter csv("fig7.csv", {"model", "architecture", "power_w",
                                   "latency_s", "epb_j_per_bit",
                                   "norm_power", "norm_latency", "norm_epb"});
  for (std::size_t i = 0; i < runs.size(); ++i) {
    csv.add_row({runs[i].model_name, accel::to_string(runs[i].arch),
                 fmt(runs[i].average_power_w), fmt(runs[i].latency_s),
                 fmt(runs[i].epb_j_per_bit), fmt(points[i].power),
                 fmt(points[i].latency), fmt(points[i].epb)});
  }
  std::printf("\nSeries written to fig7.csv\n");
  return 0;
}
