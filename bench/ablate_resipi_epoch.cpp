/// \file ablate_resipi_epoch.cpp
/// Ablation A3: ReSiPI monitoring-epoch length. Short epochs track traffic
/// tightly but quantization stalls (a config change takes effect at the
/// next epoch boundary) hit every layer; long epochs under-react and hold
/// stale gateway configurations.

#include <cstdio>

#include "core/system_simulator.hpp"
#include "dnn/zoo.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

int main() {
  using namespace optiplet;
  using accel::Architecture;

  std::printf("ABLATION A3: ReSiPI epoch-length sweep (SiPh, all models)\n\n");

  util::TextTable t({"Epoch (us)", "Model", "Latency (ms)", "Power (W)",
                     "Reconfigs", "PCM energy (nJ)"});
  for (const double epoch_us : {1.0, 2.0, 5.0, 10.0, 20.0, 50.0}) {
    core::SystemConfig cfg = core::default_system_config();
    cfg.resipi.epoch_s = epoch_us * units::us;
    const core::SystemSimulator sim(cfg);
    for (const auto& model : dnn::zoo::all_models()) {
      const auto r = sim.run(model, Architecture::kSiph2p5D);
      t.add_row({util::format_fixed(epoch_us, 0), r.model_name,
                 util::format_fixed(r.latency_s * 1e3, 4),
                 util::format_fixed(r.average_power_w, 2),
                 std::to_string(r.resipi_reconfigurations),
                 util::format_fixed(r.resipi_energy_j * 1e9, 1)});
    }
    t.add_separator();
  }
  std::fputs(t.render().c_str(), stdout);
  std::printf(
      "\nReading: small models suffer most from long epochs (their whole\n"
      "inference fits in a few epochs, so reconfiguration lag dominates);\n"
      "PCM write energy is negligible at every setting.\n");
  return 0;
}
