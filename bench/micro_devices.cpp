/// \file micro_devices.cpp
/// google-benchmark microbenchmarks (A6): throughput of the device models
/// and simulator kernels themselves. These guard against performance
/// regressions in the hot paths (ring transfer functions inside crosstalk
/// sweeps, router ticks inside the cycle simulator, full system runs
/// inside the DSE loops).

#include <benchmark/benchmark.h>

#include "accel/platform.hpp"
#include "core/system_simulator.hpp"
#include "dnn/zoo.hpp"
#include "noc/mesh.hpp"
#include "noc/traffic.hpp"
#include "photonics/link_budget.hpp"
#include "photonics/microring.hpp"
#include "photonics/pcm_coupler.hpp"
#include "util/units.hpp"

namespace {

using namespace optiplet;
using optiplet::units::nm;

void BM_MicroringDropTransmission(benchmark::State& state) {
  const photonics::MicroringResonator ring(photonics::MicroringDesign{},
                                           photonics::MicroringTuning{},
                                           1550.0 * nm);
  double wl = 1549.0 * nm;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ring.drop_transmission(wl));
    wl += 0.001 * nm;
    if (wl > 1551.0 * nm) {
      wl = 1549.0 * nm;
    }
  }
}
BENCHMARK(BM_MicroringDropTransmission);

void BM_CrosstalkPenalty64Channels(benchmark::State& state) {
  const auto grid = photonics::make_cband_grid(64);
  const photonics::MicroringResonator filter(photonics::MicroringDesign{},
                                             photonics::MicroringTuning{},
                                             grid.wavelength_m(32));
  for (auto _ : state) {
    benchmark::DoNotOptimize(photonics::LinkBudget::crosstalk_penalty_db(
        filter, grid, 32, 64));
  }
}
BENCHMARK(BM_CrosstalkPenalty64Channels);

void BM_PcmCouplerRetune(benchmark::State& state) {
  photonics::PcmCoupler pcm{photonics::PcmCouplerDesign{}};
  double chi = 0.0;
  for (auto _ : state) {
    pcm.set_crystalline_fraction(chi);
    benchmark::DoNotOptimize(pcm.cross_transmission());
    chi = chi > 0.99 ? 0.0 : chi + 0.01;
  }
}
BENCHMARK(BM_PcmCouplerRetune);

void BM_MeshStepIdle(benchmark::State& state) {
  noc::ElectricalMesh mesh(noc::MeshConfig{}, power::ElectricalTech{});
  for (auto _ : state) {
    mesh.step();
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(mesh.node_count()));
}
BENCHMARK(BM_MeshStepIdle);

void BM_MeshStepLoaded(benchmark::State& state) {
  noc::ElectricalMesh mesh(noc::MeshConfig{}, power::ElectricalTech{});
  noc::SyntheticTrafficConfig traffic;
  traffic.injection_rate = 0.3;
  noc::SyntheticTrafficHarness harness(mesh, traffic);
  harness.run(500, 0);  // warm the network up
  util::Xoshiro256 rng(99);
  for (auto _ : state) {
    // Keep the network loaded while measuring step() cost.
    if (rng.next_bool(0.3)) {
      mesh.inject(static_cast<noc::NodeId>(rng.next_below(9)),
                  static_cast<noc::NodeId>(rng.next_below(9)), 512);
    }
    mesh.step();
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(mesh.node_count()));
}
BENCHMARK(BM_MeshStepLoaded);

void BM_BuildResNet50Graph(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(dnn::zoo::make_resnet50());
  }
}
BENCHMARK(BM_BuildResNet50Graph);

void BM_PlatformConstruction(benchmark::State& state) {
  const auto tech = power::default_tech();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        accel::Platform(accel::make_table1_spec(), tech));
  }
}
BENCHMARK(BM_PlatformConstruction);

void BM_FullSystemRunResNet50Siph(benchmark::State& state) {
  const core::SystemSimulator sim(core::default_system_config());
  const auto model = dnn::zoo::make_resnet50();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sim.run(model, accel::Architecture::kSiph2p5D));
  }
}
BENCHMARK(BM_FullSystemRunResNet50Siph);

void BM_FullSystemRunVgg16AllArchs(benchmark::State& state) {
  const core::SystemSimulator sim(core::default_system_config());
  const auto model = dnn::zoo::make_vgg16();
  for (auto _ : state) {
    for (const auto arch : {accel::Architecture::kMonolithicCrossLight,
                            accel::Architecture::kElec2p5D,
                            accel::Architecture::kSiph2p5D}) {
      benchmark::DoNotOptimize(sim.run(model, arch));
    }
  }
}
BENCHMARK(BM_FullSystemRunVgg16AllArchs);

}  // namespace
