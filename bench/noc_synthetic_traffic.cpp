/// \file noc_synthetic_traffic.cpp
/// Ablation A5: classic cycle-accurate NoC characterization of the
/// electrical interposer mesh — mean packet latency vs offered load for
/// uniform-random and hotspot (DNN read) traffic. The hotspot ceiling is
/// what calibrates the transaction-level electrical model
/// (tests/core/calibration_test.cpp).

#include <cstdio>

#include "noc/mesh.hpp"
#include "noc/traffic.hpp"
#include "util/table.hpp"

int main() {
  using namespace optiplet;

  std::printf(
      "ABLATION A5: cycle-accurate 3x3 mesh, latency vs injection rate\n"
      "(128-bit links @ 2 GHz, 2 VCs x 4 flits, XY routing; 512-bit "
      "packets)\n\n");

  const auto run_point = [](noc::TrafficPattern pattern, double rate) {
    noc::MeshConfig mesh_cfg;
    noc::ElectricalMesh mesh(mesh_cfg, power::ElectricalTech{});
    noc::SyntheticTrafficConfig traffic;
    traffic.pattern = pattern;
    traffic.injection_rate = rate;
    traffic.packet_bits = 512;
    traffic.hotspot = 4;  // center node = memory chiplet site
    noc::SyntheticTrafficHarness harness(mesh, traffic);
    harness.run(3'000, 20'000);
    return std::pair{harness.mean_latency_cycles(),
                     harness.throughput_flits_per_node_cycle()};
  };

  util::TextTable t({"Pattern", "Injection (flits/node/cyc)",
                     "Mean latency (cycles)", "Throughput (flits/node/cyc)"});
  for (const double rate :
       {0.02, 0.05, 0.10, 0.15, 0.20, 0.30, 0.40, 0.50, 0.60}) {
    const auto [lat, tp] = run_point(noc::TrafficPattern::kUniformRandom,
                                     rate);
    t.add_row({"uniform-random", util::format_fixed(rate, 2),
               util::format_fixed(lat, 1), util::format_fixed(tp, 3)});
  }
  t.add_separator();
  for (const double rate : {0.02, 0.05, 0.10, 0.20, 0.40, 0.80}) {
    const auto [lat, tp] = run_point(noc::TrafficPattern::kHotspotReads,
                                     rate);
    t.add_row({"hotspot-reads(mem)", util::format_fixed(rate, 2),
               util::format_fixed(lat, 1), util::format_fixed(tp, 3)});
  }
  t.add_separator();
  for (const double rate : {0.05, 0.10, 0.20, 0.30}) {
    const auto [lat, tp] = run_point(noc::TrafficPattern::kTranspose, rate);
    t.add_row({"transpose", util::format_fixed(rate, 2),
               util::format_fixed(lat, 1), util::format_fixed(tp, 3)});
  }
  std::fputs(t.render().c_str(), stdout);
  std::printf(
      "\nReading: uniform traffic saturates near ~0.4 flits/node/cycle;\n"
      "the DNN hotspot pattern caps at the single memory port's injection\n"
      "rate (~0.11 flits/node/cycle = 1 flit/cycle source-limited), which\n"
      "is the structural reason the electrical interposer loses Table 3.\n");
  return 0;
}
