/// \file table3_platform_comparison.cpp
/// Regenerates **Table 3** of the paper: average power, latency, and
/// energy-per-bit across the three simulated CrossLight architectures and
/// the seven roofline-modeled reference platforms, averaged over the five
/// Table-2 models. Also prints the §VI headline ratios.

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "baselines/reference_platforms.hpp"
#include "core/report.hpp"
#include "dnn/zoo.hpp"
#include "engine/result_store.hpp"
#include "engine/scenario.hpp"
#include "engine/sweep_runner.hpp"
#include "util/table.hpp"

int main() {
  using namespace optiplet;
  using accel::Architecture;

  const auto models = dnn::zoo::all_models();

  std::printf(
      "TABLE 3. AVERAGE POWER, LATENCY, AND ENERGY-PER-BIT ACROSS\n"
      "ELECTRONIC AND PHOTONIC DNN ACCELERATOR PLATFORMS\n"
      "(averages over the five Table-2 models; reference platforms are\n"
      "roofline models — see DESIGN.md substitutions)\n\n");

  util::TextTable t({"Platform", "Power (W)", "Latency (ms)",
                     "EPB (pJ/bit)", "Paper P/L/EPB"});

  // The three simulated architectures over the five models, as one
  // engine grid; ResultStore reproduces the Table-3 per-platform means.
  engine::ScenarioGrid grid;
  grid.architectures = {Architecture::kMonolithicCrossLight,
                        Architecture::kElec2p5D, Architecture::kSiph2p5D};
  engine::SweepRunner runner(core::default_system_config());
  const engine::ResultStore store(runner.run(grid));
  const std::vector<core::PlatformAverages> ours = store.by_architecture();

  const auto averages_for = [&ours](Architecture arch) {
    for (const auto& avg : ours) {
      if (avg.platform == accel::to_string(arch)) {
        return &avg;
      }
    }
    std::fprintf(stderr,
                 "table3: no feasible runs for %s at the default config\n",
                 accel::to_string(arch));
    std::exit(1);
    return static_cast<const core::PlatformAverages*>(nullptr);
  };

  struct PaperRef {
    Architecture arch;
    const char* paper;
  };
  for (const auto& [arch, paper] :
       {PaperRef{Architecture::kMonolithicCrossLight, "50.8 / 8 / 3600"},
        PaperRef{Architecture::kElec2p5D, "45.3 / 41.4 / 20500"},
        PaperRef{Architecture::kSiph2p5D, "89.7 / 1.21 / 1300"}}) {
    const auto* avg = averages_for(arch);
    t.add_row({avg->platform, util::format_fixed(avg->power_w, 1),
               util::format_fixed(avg->latency_s * 1e3, 2),
               util::format_fixed(avg->epb_j_per_bit * 1e12, 1), paper});
  }
  t.add_separator();

  struct PaperRow {
    const char* name;
    const char* paper;
  };
  const PaperRow paper_rows[] = {
      {"Nvidia P100 GPU", "250 / 13.1 / 12300"},
      {"Intel 9282 CPU", "400 / 86.5 / 64400"},
      {"AMD 3970 CPU", "280 / 141.3 / 73700"},
      {"Edge TPU", "2 / 2366.4 / 17600"},
      {"Null Hop", "2.3 / 8049.3 / 68900"},
      {"Deap_CNN", "122 / 619.01 / 1959400"},
      {"HolyLight", "66.5 / 86.4 / 40300"},
  };
  const auto references = baselines::table3_reference_platforms();
  for (std::size_t i = 0; i < references.size(); ++i) {
    double power = references[i].average_power_w;
    double latency = 0.0;
    double epb = 0.0;
    for (const auto& m : models) {
      const auto r = baselines::evaluate(references[i], m);
      latency += r.latency_s;
      epb += r.epb_j_per_bit;
    }
    latency /= static_cast<double>(models.size());
    epb /= static_cast<double>(models.size());
    t.add_row({references[i].name, util::format_fixed(power, 1),
               util::format_fixed(latency * 1e3, 2),
               util::format_fixed(epb * 1e12, 1), paper_rows[i].paper});
  }
  std::fputs(t.render().c_str(), stdout);

  const auto& mono = *averages_for(Architecture::kMonolithicCrossLight);
  const auto& elec = *averages_for(Architecture::kElec2p5D);
  const auto& siph = *averages_for(Architecture::kSiph2p5D);
  std::printf(
      "\nHeadline ratios (paper Section VI in parentheses):\n"
      "  2.5D-SiPh vs monolithic CrossLight: %.1fx lower latency (6.6x), "
      "%.1fx lower EPB (2.8x)\n"
      "  2.5D-SiPh vs 2.5D-Elec:             %.1fx lower latency (34x), "
      "%.1fx lower EPB (15.8x)\n",
      mono.latency_s / siph.latency_s, mono.epb_j_per_bit / siph.epb_j_per_bit,
      elec.latency_s / siph.latency_s,
      elec.epb_j_per_bit / siph.epb_j_per_bit);
  std::printf(
      "\nAbsolute magnitudes differ from the paper (our device constants\n"
      "resolve lower absolute power); orderings and who-wins factors are\n"
      "the reproduction target. See EXPERIMENTS.md for the full analysis.\n");
  return 0;
}
