/// \file trace_replay_validation.cpp
/// Ablation A9: trace-driven validation of the electrical interposer.
/// Replays subsampled per-layer message traces from real Table-2 layers on
/// the cycle-accurate mesh and compares the delivered bandwidth against
/// the transaction-level model's streaming bound — the grounding between
/// the two simulation levels (DESIGN.md §3) at workload granularity.

#include <cstdio>

#include "dnn/zoo.hpp"
#include "noc/dnn_trace.hpp"
#include "util/table.hpp"

int main() {
  using namespace optiplet;

  std::printf(
      "ABLATION A9: cycle-accurate replay of real layer traces (3x3 mesh,\n"
      "volumes subsampled 1/256 to keep flit-level simulation tractable)\n\n");

  util::TextTable t({"Model", "Layer kind", "Chiplets", "Messages",
                     "Replay cycles", "Delivered (bits/cyc)",
                     "Read-port util (%)", "Mean pkt latency (cyc)"});

  const noc::MeshPlacement placement;
  for (const char* model_name : {"ResNet50", "VGG16", "MobileNetV2"}) {
    const auto model = dnn::zoo::by_name(model_name);
    const auto workload = dnn::compute_workload(model, 8);
    // Pick the largest conv layer and the largest dense/pointwise layer.
    const dnn::LayerWork* biggest_conv = nullptr;
    const dnn::LayerWork* biggest_dense = nullptr;
    for (const auto& l : workload.layers) {
      const bool dense_like =
          l.kind == dnn::LayerKind::kDense || l.kernel == 1;
      auto*& slot = dense_like ? biggest_dense : biggest_conv;
      if (slot == nullptr || l.weight_bits + l.input_bits >
                                 slot->weight_bits + slot->input_bits) {
        slot = &l;
      }
    }
    for (const auto* layer : {biggest_conv, biggest_dense}) {
      if (layer == nullptr) {
        continue;
      }
      const std::size_t chiplets = layer->kind == dnn::LayerKind::kDense ||
                                           layer->kernel == 1
                                       ? 2
                                       : 3;
      const auto trace =
          noc::build_layer_trace(*layer, chiplets, placement, 256);
      std::uint64_t read_bits = 0;
      for (const auto& msg : trace) {
        if (msg.src == placement.memory_node) {
          read_bits += msg.bits;
        }
      }
      noc::ElectricalMesh mesh(noc::MeshConfig{}, power::ElectricalTech{});
      const auto r = noc::replay_trace(mesh, trace);
      const double read_util =
          100.0 * static_cast<double>(read_bits) /
          (static_cast<double>(r.cycles) * 128.0);
      t.add_row({model_name,
                 layer->kind == dnn::LayerKind::kDense
                     ? "dense"
                     : (std::to_string(layer->kernel) + "x" +
                        std::to_string(layer->kernel) + " conv"),
                 std::to_string(chiplets), std::to_string(trace.size()),
                 std::to_string(r.cycles),
                 util::format_fixed(r.delivered_bits_per_cycle, 1),
                 util::format_fixed(read_util, 1),
                 util::format_fixed(r.mean_packet_latency_cycles, 1)});
    }
    t.add_separator();
  }
  std::fputs(t.render().c_str(), stdout);
  std::printf(
      "\nReading: the memory node's read port runs at 60-95%% utilization\n"
      "across real layer shapes (writes ride the reverse channels), so the\n"
      "transaction-level model's streaming hotspot efficiency (0.62) is a\n"
      "conservative measured figure, not an optimistic one. Per-packet\n"
      "latency grows with queueing depth at the hot port — exactly the\n"
      "congestion the paper attributes to electrical interposers.\n");
  return 0;
}
