/// \file ablate_symbol_rate.cpp
/// Ablation A4: photonic MAC symbol rate (the DAC-limited dial of the
/// CrossLight device stack, 1-10 GS/s in the literature). Shows the
/// compute-bound -> communication-bound crossover per architecture.

#include <cstdio>
#include <vector>

#include "core/report.hpp"
#include "core/system_simulator.hpp"
#include "dnn/zoo.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

int main() {
  using namespace optiplet;
  using accel::Architecture;

  std::printf(
      "ABLATION A4: MAC symbol-rate sweep (average over the 5 models)\n"
      "Default: 4 GS/s.\n\n");

  util::TextTable t({"Symbol rate (GS/s)", "Architecture", "Avg latency (ms)",
                     "Avg power (W)", "Avg EPB (pJ/bit)"});
  for (const double gsps : {1.0, 2.0, 4.0, 8.0}) {
    core::SystemConfig cfg = core::default_system_config();
    cfg.tech.compute.mac_symbol_rate_hz = gsps * units::GHz;
    const core::SystemSimulator sim(cfg);
    for (const auto arch :
         {Architecture::kMonolithicCrossLight, Architecture::kElec2p5D,
          Architecture::kSiph2p5D}) {
      std::vector<core::RunResult> runs;
      for (const auto& model : dnn::zoo::all_models()) {
        runs.push_back(sim.run(model, arch));
      }
      const auto avg = core::average_runs(accel::to_string(arch), runs);
      t.add_row({util::format_fixed(gsps, 0), avg.platform,
                 util::format_fixed(avg.latency_s * 1e3, 3),
                 util::format_fixed(avg.power_w, 2),
                 util::format_fixed(avg.epb_j_per_bit * 1e12, 1)});
    }
    t.add_separator();
  }
  std::fputs(t.render().c_str(), stdout);
  std::printf(
      "\nReading: the SiPh platform converts symbol-rate into latency until\n"
      "the 768 Gb/s broadcast saturates; the monolithic chip barely moves\n"
      "(DDR-bound), and the electrical interposer not at all (MSHR-bound).\n");
  return 0;
}
