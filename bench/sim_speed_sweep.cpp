/// \file sim_speed_sweep.cpp
/// Simulator self-benchmark: requests simulated per wall-second at each
/// interconnect fidelity, on the serving load sweep the fidelity modes
/// exist to accelerate.
///
/// One heavyweight tenant (DenseNet121 — deep enough that the per-layer
/// cycle loop dominates cycle-accurate wall time) is served at the same
/// sub-knee load points under kAnalytical, kCycleAccurate, and kSampled.
/// Each fidelity runs on a fresh SweepRunner so its wall-clock includes
/// the ServiceTimeOracle warm-up (the memoized per-(tenant, batch) system
/// runs where fidelity cost actually lives) plus the request event loop.
///
/// The CSV makes the speed/accuracy contract measurable: sampled fidelity
/// must stay within the calibration tolerance bands of the cycle-accurate
/// latencies while simulating requests an order of magnitude faster.
/// tools/check_bench_csv.py trips CI when either side regresses
/// (sampled < 10x cycle requests/wall-s, or sampled latency outside the
/// cycle bands).
///
/// Dumps sim_speed_sweep.csv next to the binary.

#include <chrono>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "core/fidelity.hpp"
#include "engine/result_store.hpp"
#include "engine/scenario.hpp"
#include "engine/sweep_runner.hpp"
#include "obs/recorder.hpp"
#include "serve/service_time.hpp"
#include "serve/serving_simulator.hpp"
#include "util/csv.hpp"
#include "util/require.hpp"
#include "util/table.hpp"

namespace {

using namespace optiplet;

constexpr const char* kModel = "DenseNet121";
constexpr std::uint64_t kRequestsPerPoint = 400;

/// Sub-knee load points: latency tracks the batch service time here, so
/// the sampled-vs-cycle comparison measures model agreement. Near the
/// knee, queueing would amplify a few percent of service-time error into
/// tens of percent of latency error (waits scale like 1/(1 - rho)) and
/// the band would gate queueing theory instead of fidelity.
constexpr double kUtilizations[] = {0.3, 0.6};

/// The sampled operating point the CI gate is calibrated for: 8 windows
/// keeps the worst-case DenseNet121 latency error inside the calibration
/// bands (see tests/serve/batch_calibration_test.cpp) while the cycle
/// loop runs only on ~6% of the layers.
core::FidelitySpec sampled_spec() {
  core::FidelitySpec spec(core::Fidelity::kSampled);
  spec.windows = 8;
  spec.seed = 3;
  return spec;
}

}  // namespace

int main() {
  const core::SystemConfig base = core::default_system_config();

  // One shared capacity anchor (analytical batch-1 service time) so every
  // fidelity serves the exact same offered rates.
  const double capacity_rps = [&base] {
    serve::ColocatedSetup setup = serve::make_colocated_setup(
        base, accel::Architecture::kSiph2p5D, serve::split_mix(kModel));
    serve::ServiceTimeOracle oracle(std::move(setup.oracle_tenants),
                                    accel::Architecture::kSiph2p5D);
    return 1.0 / oracle.batch_run(0, 1).latency_s;
  }();
  std::printf("%s on 2.5D-CrossLight-SiPh: no-batch capacity %.0f "
              "requests/s (analytical anchor)\n\n",
              kModel, capacity_rps);

  const std::vector<core::FidelitySpec> fidelities = {
      core::Fidelity::kAnalytical, core::Fidelity::kCycleAccurate,
      sampled_spec()};

  util::CsvWriter csv("sim_speed_sweep.csv",
                      {"fidelity", "policy", "offered_rps", "offered_util",
                       "requests", "wall_s", "requests_per_wall_s",
                       "throughput_rps", "mean_s", "p50_s", "p95_s", "p99_s",
                       "mean_batch", "obs"});
  OPTIPLET_REQUIRE(csv.ok(), "cannot write sim_speed_sweep.csv");

  util::TextTable table({"Fidelity", "Wall (s)", "Req/wall-s", "Points",
                         "p50 @0.3 (us)", "p50 @0.6 (us)"});
  for (const core::FidelitySpec& fidelity : fidelities) {
    engine::ScenarioGrid grid;
    grid.tenant_mixes = {kModel};
    grid.architectures = {accel::Architecture::kSiph2p5D};
    grid.fidelities = {fidelity};
    // kNone serves batch 1, kFixedSize batch 8 (plus a partial tail): the
    // oracle warms several distinct batch sizes per fidelity, the axis the
    // memoized cycle cost scales along.
    grid.batch_policies = {serve::BatchPolicy::kNone,
                           serve::BatchPolicy::kFixedSize};
    for (const double util : kUtilizations) {
      grid.arrival_rates_rps.push_back(util * capacity_rps);
    }
    grid.serving_defaults.requests = kRequestsPerPoint;
    grid.serving_defaults.max_batch = 8;
    grid.serving_defaults.max_wait_s = 500e-6;

    // Fresh runner per fidelity: the wall-clock below is this fidelity's
    // full cost — oracle warm-up included — with no cross-fidelity memo
    // reuse.
    engine::SweepRunner runner(base);
    const auto t0 = std::chrono::steady_clock::now();
    const engine::ResultStore store(runner.run(grid));
    const auto t1 = std::chrono::steady_clock::now();
    OPTIPLET_REQUIRE(!store.empty(), "sim speed sweep produced no results");

    const double wall_s =
        std::chrono::duration<double>(t1 - t0).count();
    OPTIPLET_REQUIRE(wall_s > 0.0, "zero wall time for a fidelity sweep");
    const double simulated_requests = static_cast<double>(
        kRequestsPerPoint * store.results().size());
    const double requests_per_wall_s = simulated_requests / wall_s;

    const std::string fidelity_name = core::to_string(fidelity);
    double p50_low = 0.0;
    double p50_high = 0.0;
    for (const auto& r : store.results()) {
      OPTIPLET_REQUIRE(r.serving.has_value(),
                       "sim speed row without serving metrics");
      const auto& m = *r.serving;
      const auto& s = *r.spec.serving;
      const double util = s.arrival_rps / capacity_rps;
      if (s.policy == serve::BatchPolicy::kNone) {
        (util < 0.45 ? p50_low : p50_high) = m.p50_s;
      }
      csv.add_row({fidelity_name, serve::to_string(s.policy),
                   util::format_general(s.arrival_rps),
                   util::format_general(util),
                   std::to_string(kRequestsPerPoint),
                   util::format_general(wall_s),
                   util::format_general(requests_per_wall_s),
                   util::format_general(m.throughput_rps),
                   util::format_general(m.mean_latency_s),
                   util::format_general(m.p50_s),
                   util::format_general(m.p95_s),
                   util::format_general(m.p99_s),
                   util::format_general(m.mean_batch), "off"});
    }
    table.add_row({fidelity_name, util::format_fixed(wall_s, 3),
                   util::format_fixed(requests_per_wall_s, 0),
                   std::to_string(store.results().size()),
                   util::format_fixed(p50_low * 1e6, 1),
                   util::format_fixed(p50_high * 1e6, 1)});
  }

  std::fputs(table.render().c_str(), stdout);

  // Observability overhead pair: the same analytical scenario with the
  // recorder detached (obs=pair-off, the null-recorder default) and
  // attached with collection disabled (obs=pair-on) — every hook branch
  // is taken but nothing is recorded, which is exactly the cost the
  // "near-zero overhead when disabled" contract bounds. Best of
  // kObsTrials so scheduler noise doesn't masquerade as overhead.
  // tools/check_bench_csv.py gates the attached rate at >= 97% of the
  // detached rate. (Full recording is deliberately not under the 3%
  // gate: tracing writes per-request spans, so its cost scales with
  // what it records.)
  {
    serve::ServingSpec spec;
    spec.tenant_mix = kModel;
    spec.arrival_rps = 0.6 * capacity_rps;
    spec.requests = 2 * kRequestsPerPoint;
    serve::ServingConfig config = serve::make_serving_config(
        base, accel::Architecture::kSiph2p5D, spec);

    constexpr int kObsTrials = 3;
    const auto best_of = [&config](obs::Recorder* recorder) {
      config.recorder = recorder;
      double best_s = 0.0;
      serve::ServingReport report;
      for (int trial = 0; trial < kObsTrials; ++trial) {
        const auto t0 = std::chrono::steady_clock::now();
        report = serve::simulate(config);
        const double wall_s = std::chrono::duration<double>(
                                  std::chrono::steady_clock::now() - t0)
                                  .count();
        if (trial == 0 || wall_s < best_s) {
          best_s = wall_s;
        }
      }
      OPTIPLET_REQUIRE(best_s > 0.0, "zero wall time for an obs pair run");
      return std::pair<double, serve::ServingReport>(best_s, report);
    };

    for (const bool attached : {false, true}) {
      obs::Recorder recorder(
          obs::RecorderOptions{.trace = false, .metrics = false});
      const auto [wall_s, report] =
          best_of(attached ? &recorder : nullptr);
      const auto& m = report.metrics;
      const double rate = static_cast<double>(m.offered) / wall_s;
      csv.add_row({"analytical", "none",
                   util::format_general(spec.arrival_rps), "0.6",
                   std::to_string(spec.requests),
                   util::format_general(wall_s), util::format_general(rate),
                   util::format_general(m.throughput_rps),
                   util::format_general(m.mean_latency_s),
                   util::format_general(m.p50_s),
                   util::format_general(m.p95_s),
                   util::format_general(m.p99_s),
                   util::format_general(m.mean_batch),
                   attached ? "pair-on" : "pair-off"});
      std::printf("obs %s: %.0f requests/wall-s (best of %d)\n",
                  attached ? "pair-on " : "pair-off", rate, kObsTrials);
    }
  }

  std::printf("\nFull sweep written to sim_speed_sweep.csv\n");
  return 0;
}
