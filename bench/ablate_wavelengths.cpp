/// \file ablate_wavelengths.cpp
/// Design-space ablation A1 (paper §VII, open challenge 3): sweep the WDM
/// channel count of the photonic interposer and report the SiPh platform's
/// latency / power / EPB per model. Shows where extra bandwidth stops
/// paying (compute-bound region) and where laser power starts hurting.
/// Runs as one engine::ScenarioGrid; infeasible channel counts (MRG row
/// exceeding the ring FSR) are pre-filtered by the grid and reported as
/// such. Dumps ablate_wavelengths.csv next to the binary.

#include <cstdio>
#include <vector>

#include "dnn/zoo.hpp"
#include "engine/result_store.hpp"
#include "engine/scenario.hpp"
#include "engine/sweep_runner.hpp"
#include "util/table.hpp"

int main() {
  using namespace optiplet;

  std::printf(
      "ABLATION A1: wavelength count sweep (2.5D-CrossLight-SiPh)\n"
      "Table-1 default: 64 wavelengths.\n\n");

  const std::vector<std::size_t> axis{8, 16, 32, 64, 128};
  engine::ScenarioGrid grid;
  grid.wavelengths = axis;
  grid.architectures = {accel::Architecture::kSiph2p5D};
  engine::SweepRunner runner(core::default_system_config());
  const engine::ResultStore store(runner.run(grid));

  util::TextTable t({"Wavelengths", "Model", "Latency (ms)", "Power (W)",
                     "EPB (pJ/bit)"});
  for (const std::size_t wavelengths : axis) {
    bool any = false;
    for (const auto& r : store.results()) {
      if (r.spec.wavelengths != wavelengths) {
        continue;
      }
      any = true;
      t.add_row({std::to_string(wavelengths), r.run.model_name,
                 util::format_fixed(r.run.latency_s * 1e3, 4),
                 util::format_fixed(r.run.average_power_w, 2),
                 util::format_fixed(r.run.epb_j_per_bit * 1e12, 1)});
    }
    if (!any) {
      t.add_row({std::to_string(wavelengths),
                 "infeasible: MRG row exceeds ring FSR", "-", "-", "-"});
    }
    t.add_separator();
  }
  std::fputs(t.render().c_str(), stdout);

  if (store.write_csv("ablate_wavelengths.csv")) {
    std::printf("\nSeries written to ablate_wavelengths.csv\n");
  } else {
    std::fprintf(stderr, "\nwarning: could not write ablate_wavelengths.csv\n");
  }
  std::printf(
      "\nReading: below ~32 wavelengths the weight-heavy models (VGG16)\n"
      "turn communication-bound; 64 is the sweet spot; at 128 wavelengths\n"
      "a 4-gateway chiplet's 32-channel MRG row no longer fits inside one\n"
      "microring free spectral range, so the link budget cannot close —\n"
      "scaling wavelengths requires scaling gateways with them.\n");
  return 0;
}
