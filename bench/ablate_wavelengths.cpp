/// \file ablate_wavelengths.cpp
/// Design-space ablation A1 (paper §VII, open challenge 3): sweep the WDM
/// channel count of the photonic interposer and report the SiPh platform's
/// latency / power / EPB per model. Shows where extra bandwidth stops
/// paying (compute-bound region) and where laser power starts hurting.

#include <cstdio>

#include "core/system_simulator.hpp"
#include "dnn/zoo.hpp"
#include "util/table.hpp"

int main() {
  using namespace optiplet;
  using accel::Architecture;

  std::printf(
      "ABLATION A1: wavelength count sweep (2.5D-CrossLight-SiPh)\n"
      "Table-1 default: 64 wavelengths.\n\n");

  util::TextTable t({"Wavelengths", "Model", "Latency (ms)", "Power (W)",
                     "EPB (pJ/bit)"});
  for (const std::size_t wavelengths : {8u, 16u, 32u, 64u, 128u}) {
    core::SystemConfig cfg = core::default_system_config();
    cfg.photonic.total_wavelengths = wavelengths;
    const noc::PhotonicInterposer probe(cfg.photonic, cfg.tech.photonic);
    if (!probe.link_budget_feasible()) {
      t.add_row({std::to_string(wavelengths),
                 "infeasible: MRG row exceeds ring FSR", "-", "-", "-"});
      t.add_separator();
      continue;
    }
    const core::SystemSimulator sim(cfg);
    for (const auto& model : dnn::zoo::all_models()) {
      const auto r = sim.run(model, Architecture::kSiph2p5D);
      t.add_row({std::to_string(wavelengths), r.model_name,
                 util::format_fixed(r.latency_s * 1e3, 4),
                 util::format_fixed(r.average_power_w, 2),
                 util::format_fixed(r.epb_j_per_bit * 1e12, 1)});
    }
    t.add_separator();
  }
  std::fputs(t.render().c_str(), stdout);
  std::printf(
      "\nReading: below ~32 wavelengths the weight-heavy models (VGG16)\n"
      "turn communication-bound; 64 is the sweet spot; at 128 wavelengths\n"
      "a 4-gateway chiplet's 32-channel MRG row no longer fits inside one\n"
      "microring free spectral range, so the link budget cannot close —\n"
      "scaling wavelengths requires scaling gateways with them.\n");
  return 0;
}
