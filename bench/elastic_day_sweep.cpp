/// \file elastic_day_sweep.cpp
/// Elastic-operation characterization over a compressed diurnal day
/// (docs/elastic-operation.md): two LeNet5 tenants replay anti-phase
/// sinusoidal arrival traces — tenant A peaks while tenant B troughs, at
/// unequal base rates so the aggregate still swings day/night — against
/// four operating policies on the same pool:
///   * **static** — the fixed partition, day-curve metering only;
///   * **elastic** — EMA-driven re-partitioning follows the load shift,
///     each swap charged one serialized ReSiPI PCM-write window;
///   * **elastic_gated** — plus laser/gateway power-gating in measured
///     idle gaps, wake latency charged on the next batch;
///   * **faulted** — elastic_gated plus a dead chiplet mid-day and
///     capped-attempt client retry: the degraded-but-serving case.
///
/// The day curve buckets energy, completions, and grid-intensity-priced
/// carbon; off-peak vs peak energy-per-request comes from the lowest- and
/// highest-offered bucket terciles. The headline contract (CI-gated via
/// tools/check_bench_csv.py): elastic + gating spends measurably less
/// energy per request than the static partition at off-peak, while the
/// faulted day degrades goodput but never drops to zero availability.
///
/// Dumps elastic_day_sweep.csv next to the binary for plotting.

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "core/system_config.hpp"
#include "power/energy_ledger.hpp"
#include "serve/elastic.hpp"
#include "serve/serving_simulator.hpp"
#include "serve/tracegen.hpp"
#include "util/csv.hpp"
#include "util/require.hpp"
#include "util/table.hpp"

namespace {

using namespace optiplet;

constexpr const char* kMix = "LeNet5+LeNet5";
/// One compressed "day" of the sinusoid; two full days per run.
constexpr double kPeriodS = 0.2;
constexpr double kDurationS = 2.0 * kPeriodS;
constexpr double kBucketS = kPeriodS / 8.0;
/// Unequal anti-phase bases: the aggregate keeps a day/night swing while
/// the per-tenant share still sweeps wide enough to trip re-partitioning.
constexpr double kTenantABaseRps = 2500.0;
constexpr double kTenantBBaseRps = 1200.0;
constexpr double kAmplitude = 0.9;
constexpr double kFaultTimeS = kDurationS / 2.0;  // mid-day chiplet death

struct PolicyRow {
  std::string name;
  serve::ElasticSpec elastic;
};

/// Anti-phase diurnal arrivals: tenant B's sinusoid is tenant A's shifted
/// by half a period. The generator has no phase knob, so the shift is
/// applied to the event times modulo the duration (phase-shifting an
/// ergodic non-homogeneous Poisson sample), then re-sorted.
std::vector<double> diurnal_arrivals(double base_rps, std::uint64_t seed,
                                     bool anti_phase) {
  serve::TraceGenSpec spec;
  spec.profile = serve::TraceProfile::kDiurnal;
  spec.base_rps = base_rps;
  spec.duration_s = kDurationS;
  spec.period_s = kPeriodS;
  spec.amplitude = kAmplitude;
  spec.seed = seed;
  std::vector<double> times;
  for (const serve::TraceEvent& event : serve::generate_trace(spec)) {
    double t = event.arrival_s;
    if (anti_phase) {
      t += kPeriodS / 2.0;
      if (t >= kDurationS) {
        t -= kDurationS;
      }
    }
    times.push_back(t);
  }
  std::sort(times.begin(), times.end());
  return times;
}

double idle_energy_j(const serve::ServingReport& report) {
  const auto it = report.ledger.entries().find("serving.idle");
  return it == report.ledger.entries().end() ? 0.0
                                             : it->second.dynamic_energy_j;
}

/// Energy per completed request over the tercile of day-curve buckets
/// with the lowest (`off_peak`) or highest offered load.
double tercile_epr_j(const serve::ServingReport& report, bool off_peak) {
  std::vector<serve::DayPoint> buckets = report.day_curve;
  std::sort(buckets.begin(), buckets.end(),
            [](const serve::DayPoint& a, const serve::DayPoint& b) {
              return a.offered < b.offered;
            });
  if (!off_peak) {
    std::reverse(buckets.begin(), buckets.end());
  }
  const std::size_t n = std::max<std::size_t>(buckets.size() / 3, 1);
  double energy = 0.0;
  std::uint64_t completed = 0;
  for (std::size_t i = 0; i < n && i < buckets.size(); ++i) {
    energy += buckets[i].energy_j;
    completed += buckets[i].completed;
  }
  return completed > 0 ? energy / static_cast<double>(completed) : 0.0;
}

}  // namespace

int main() {
  const core::SystemConfig base = core::default_system_config();

  std::vector<PolicyRow> policies;
  {
    serve::ElasticSpec metered;  // day-curve metering only: still static
    metered.curve_bucket_s = kBucketS;
    metered.carbon_amplitude = 0.5;
    metered.carbon_period_s = kPeriodS;
    policies.push_back({"static", metered});

    serve::ElasticSpec elastic = metered;
    elastic.shift_threshold = 0.15;
    elastic.ema_tau_s = 0.02;
    elastic.cooldown_s = 0.05;
    policies.push_back({"elastic", elastic});

    serve::ElasticSpec gated = elastic;
    gated.gate = true;
    gated.gate_after_s = 1.0e-4;
    gated.wake_s = 1.0e-5;
    policies.push_back({"elastic_gated", gated});

    serve::ElasticSpec faulted = gated;
    faulted.retry_max_attempts = 2;
    faulted.retry_backoff_s = 1.0e-3;
    faulted.faults.push_back({kFaultTimeS, 2, 1.0, -1});
    policies.push_back({"faulted", faulted});
  }

  util::CsvWriter csv("elastic_day_sweep.csv",
                      {"policy", "offered", "completed", "abandoned",
                       "availability", "goodput_rps", "energy_per_request_j",
                       "offpeak_epr_j", "peak_epr_j", "idle_energy_j",
                       "gated_idle_s", "gate_events", "repartitions",
                       "retries", "faults_injected", "carbon_g"});
  OPTIPLET_REQUIRE(csv.ok(), "cannot open elastic_day_sweep.csv");

  util::TextTable table({"Policy", "Offered", "Done", "Avail", "E/req (mJ)",
                     "Off-peak (mJ)", "Peak (mJ)", "Gated (ms)", "Repart",
                     "Carbon (mg)"});
  for (const PolicyRow& policy : policies) {
    serve::ServingSpec spec;
    spec.tenant_mix = kMix;
    spec.arrival_rps = kTenantABaseRps + kTenantBBaseRps;  // replaced below
    spec.requests = 100;                                   // replaced below
    spec.policy = serve::BatchPolicy::kDeadline;
    spec.sla_s = 0.01;
    spec.elastic = policy.elastic;
    serve::ServingConfig config = serve::make_serving_config(
        base, accel::Architecture::kSiph2p5D, spec);
    OPTIPLET_REQUIRE(config.tenants.size() == 2,
                     "the day sweep co-locates exactly two tenants");
    config.tenants[0].replay_trace = true;
    config.tenants[0].trace_arrivals =
        diurnal_arrivals(kTenantABaseRps, 7, false);
    config.tenants[1].replay_trace = true;
    config.tenants[1].trace_arrivals =
        diurnal_arrivals(kTenantBBaseRps, 8, true);

    const serve::ServingReport report = serve::simulate(config);
    const serve::ServingMetrics& m = report.metrics;
    OPTIPLET_REQUIRE(!report.day_curve.empty(),
                     "day-curve metering produced no buckets");
    const double availability =
        m.offered > 0
            ? static_cast<double>(m.completed) / static_cast<double>(m.offered)
            : 0.0;
    const double off_peak = tercile_epr_j(report, true);
    const double peak = tercile_epr_j(report, false);

    csv.add_row({policy.name, std::to_string(m.offered),
                 std::to_string(m.completed), std::to_string(m.abandoned),
                 util::format_general(availability),
                 util::format_general(m.goodput_rps),
                 util::format_general(m.energy_per_request_j),
                 util::format_general(off_peak), util::format_general(peak),
                 util::format_general(idle_energy_j(report)),
                 util::format_general(m.gated_idle_s),
                 std::to_string(m.gate_events),
                 std::to_string(m.repartitions), std::to_string(m.retries),
                 std::to_string(m.faults_injected),
                 util::format_general(m.carbon_g)});
    table.add_row({policy.name, std::to_string(m.offered),
                   std::to_string(m.completed),
                   util::format_fixed(availability, 3),
                   util::format_fixed(m.energy_per_request_j * 1e3, 3),
                   util::format_fixed(off_peak * 1e3, 3),
                   util::format_fixed(peak * 1e3, 3),
                   util::format_fixed(m.gated_idle_s * 1e3, 2),
                   std::to_string(m.repartitions),
                   util::format_fixed(m.carbon_g * 1e3, 3)});
  }

  std::printf("Elastic day sweep: %s over %.1f compressed days "
              "(%.2f s simulated, %.0f/%.0f r/s anti-phase bases)\n\n",
              kMix, kDurationS / kPeriodS, kDurationS, kTenantABaseRps,
              kTenantBBaseRps);
  std::printf("%s", table.render().c_str());
  std::printf("\nDay sweep written to elastic_day_sweep.csv\n");
  return 0;
}
