/// \file transformer_serving_sweep.cpp
/// Autoregressive-serving characterization on the TinyGPT tenant: the
/// context-length cost of decoding, the batching-policy trade at a
/// saturating decode-heavy operating point, and KV-cache pressure.
///
/// Section 1 sweeps the prompt length at a fixed generation budget under
/// continuous batching: every decode step re-streams the whole KV cache,
/// so tokens/s falls monotonically as the context grows — the
/// bandwidth-bound regime that motivates treating decode as its own
/// phase instead of re-pricing the prefill graph.
///
/// Section 2 pits no-batching, fixed-size batching, and continuous
/// (iteration-level) batching against each other at a saturating
/// decode-heavy load with widely varied generation lengths. Fixed-size
/// batches pad every member to the longest generation and make arrivals
/// wait for whole-batch completion; continuous batching retires each
/// sequence at its own token boundary and lands waiting prefills in the
/// freed slots, so it must win goodput *and* tail latency here.
///
/// Section 3 tightens the per-tenant KV-cache budget until it, not
/// max_batch, caps the concurrent decode set: peak KV occupancy must
/// stay within the budget at any setting, and the tight budget trades
/// throughput for the smaller activation buffer.
///
/// Dumps transformer_serving_sweep.csv next to the binary for plotting;
/// CI's tools/check_bench_csv.py trips on sanity violations in it.

#include <cstdio>
#include <string>

#include "engine/result_store.hpp"
#include "engine/scenario.hpp"
#include "engine/sweep_runner.hpp"
#include "serve/serving_spec.hpp"
#include "util/csv.hpp"
#include "util/require.hpp"
#include "util/table.hpp"

namespace {

using namespace optiplet;

constexpr const char* kModel = "TinyGPT";

/// Section 1: prompt lengths at a fixed 64-token generation budget. The
/// rate saturates the executor at every point so decode_tps measures
/// capacity, not the offered load.
constexpr std::uint32_t kContextTokens[] = {64, 256, 512, 1024};
constexpr std::uint32_t kContextDecode = 64;
constexpr double kContextRateRps = 400.0;
constexpr std::uint64_t kContextRequests = 160;

/// Section 2: the saturating decode-heavy policy grid. spread 0.6 makes
/// generation lengths range over 96*(1 +/- 0.6) — the straggler spread
/// continuous batching monetizes.
constexpr std::uint32_t kGridPrefill = 32;
constexpr std::uint32_t kGridDecode = 96;
constexpr double kGridSpread = 0.6;
constexpr double kGridRateRps = 300.0;
constexpr std::uint64_t kGridRequests = 250;

/// Section 3: KV budgets from decode-set-capping to effectively
/// unconstrained (the 256 MiB serving default).
constexpr double kKvBudgetsMb[] = {8.0, 256.0};
constexpr std::uint32_t kKvPrefill = 256;
constexpr std::uint32_t kKvDecode = 32;
constexpr double kKvRateRps = 300.0;
constexpr std::uint64_t kKvRequests = 150;

}  // namespace

int main() {
  const core::SystemConfig base = core::default_system_config();
  engine::SweepRunner runner(base);

  util::CsvWriter csv(
      "transformer_serving_sweep.csv",
      {"section", "policy", "prefill_tokens", "decode_tokens",
       "token_spread", "kv_cache_mb", "offered_rps", "throughput_rps",
       "goodput_rps", "shed", "p50_s", "p99_s", "ttft_p99_s", "decode_tps",
       "kv_peak_bytes", "kv_budget_bytes", "mean_batch", "utilization",
       "energy_per_request_j"});
  OPTIPLET_REQUIRE(csv.ok(), "cannot write transformer_serving_sweep.csv");
  const auto emit = [&csv](const char* section,
                           const engine::ScenarioResult& r) {
    const auto& m = *r.serving;
    const auto& s = *r.spec.serving;
    csv.add_row({section, serve::to_string(s.policy),
                 std::to_string(s.prefill_tokens),
                 std::to_string(s.decode_tokens),
                 util::format_general(s.token_spread),
                 util::format_general(s.kv_cache_mb),
                 util::format_general(s.arrival_rps),
                 util::format_general(m.throughput_rps),
                 util::format_general(m.goodput_rps),
                 std::to_string(m.shed), util::format_general(m.p50_s),
                 util::format_general(m.p99_s),
                 util::format_general(m.ttft_p99_s),
                 util::format_general(m.decode_tps),
                 std::to_string(m.kv_peak_bytes),
                 util::format_general(s.kv_cache_mb * 1024.0 * 1024.0),
                 util::format_general(m.mean_batch),
                 util::format_general(m.utilization),
                 util::format_general(m.energy_per_request_j)});
  };

  // --- Section 1: decode throughput versus context length ---
  engine::ScenarioGrid context_grid;
  context_grid.tenant_mixes = {kModel};
  context_grid.architectures = {accel::Architecture::kSiph2p5D};
  context_grid.batch_policies = {serve::BatchPolicy::kContinuous};
  context_grid.arrival_rates_rps = {kContextRateRps};
  context_grid.prefill_token_counts.assign(std::begin(kContextTokens),
                                           std::end(kContextTokens));
  context_grid.decode_token_counts = {kContextDecode};
  context_grid.serving_defaults.requests = kContextRequests;
  context_grid.serving_defaults.max_batch = 8;

  const engine::ResultStore context_store(runner.run(context_grid));
  OPTIPLET_REQUIRE(!context_store.empty(),
                   "context-length sweep produced no results");
  std::printf("=== %s: decode cost versus context length "
              "(cont, %u generated tokens) ===\n",
              kModel, kContextDecode);
  util::TextTable context_table({"Prefill", "Thpt (r/s)", "Decode (tok/s)",
                                 "TTFT p99 (ms)", "p99 (ms)",
                                 "KV peak (MiB)"});
  for (const auto& r : context_store.results()) {
    OPTIPLET_REQUIRE(r.serving.has_value(),
                     "serving sweep row without serving metrics");
    const auto& m = *r.serving;
    context_table.add_row(
        {std::to_string(r.spec.serving->prefill_tokens),
         util::format_fixed(m.throughput_rps, 0),
         util::format_fixed(m.decode_tps, 0),
         util::format_fixed(m.ttft_p99_s * 1e3, 2),
         util::format_fixed(m.p99_s * 1e3, 2),
         util::format_fixed(static_cast<double>(m.kv_peak_bytes) / (1 << 20),
                            2)});
    emit("context", r);
  }
  std::fputs(context_table.render().c_str(), stdout);
  std::fputc('\n', stdout);

  // --- Section 2: batching policies at saturating decode-heavy load ---
  engine::ScenarioGrid policy_grid;
  policy_grid.tenant_mixes = {kModel};
  policy_grid.architectures = {accel::Architecture::kSiph2p5D};
  policy_grid.batch_policies = {serve::BatchPolicy::kNone,
                                serve::BatchPolicy::kFixedSize,
                                serve::BatchPolicy::kContinuous};
  policy_grid.arrival_rates_rps = {kGridRateRps};
  policy_grid.prefill_token_counts = {kGridPrefill};
  policy_grid.decode_token_counts = {kGridDecode};
  policy_grid.serving_defaults.requests = kGridRequests;
  policy_grid.serving_defaults.max_batch = 8;
  policy_grid.serving_defaults.token_spread = kGridSpread;

  const engine::ResultStore policy_store(runner.run(policy_grid));
  OPTIPLET_REQUIRE(!policy_store.empty(),
                   "policy grid produced no results");
  std::printf("=== %s: policies at saturating decode-heavy load "
              "(%u+%u tokens, spread %.1f) ===\n",
              kModel, kGridPrefill, kGridDecode, kGridSpread);
  util::TextTable policy_table({"Policy", "Thpt (r/s)", "Gput (r/s)",
                                "TTFT p99 (ms)", "p99 (ms)",
                                "Decode (tok/s)", "E/req (mJ)"});
  for (const auto& r : policy_store.results()) {
    OPTIPLET_REQUIRE(r.serving.has_value(),
                     "serving sweep row without serving metrics");
    const auto& m = *r.serving;
    policy_table.add_row(
        {serve::to_string(r.spec.serving->policy),
         util::format_fixed(m.throughput_rps, 0),
         util::format_fixed(m.goodput_rps, 0),
         util::format_fixed(m.ttft_p99_s * 1e3, 2),
         util::format_fixed(m.p99_s * 1e3, 2),
         util::format_fixed(m.decode_tps, 0),
         util::format_fixed(m.energy_per_request_j * 1e3, 3)});
    emit("policy", r);
  }
  std::fputs(policy_table.render().c_str(), stdout);
  std::fputc('\n', stdout);

  // --- Section 3: KV-cache pressure under continuous batching ---
  std::printf("=== %s: KV-cache budget pressure (cont, %u+%u tokens) ===\n",
              kModel, kKvPrefill, kKvDecode);
  util::TextTable kv_table({"Budget (MiB)", "Thpt (r/s)", "KV peak (MiB)",
                            "Mean batch", "p99 (ms)"});
  for (const double budget_mb : kKvBudgetsMb) {
    engine::ScenarioGrid kv_grid;
    kv_grid.tenant_mixes = {kModel};
    kv_grid.architectures = {accel::Architecture::kSiph2p5D};
    kv_grid.batch_policies = {serve::BatchPolicy::kContinuous};
    kv_grid.arrival_rates_rps = {kKvRateRps};
    kv_grid.prefill_token_counts = {kKvPrefill};
    kv_grid.decode_token_counts = {kKvDecode};
    kv_grid.serving_defaults.requests = kKvRequests;
    kv_grid.serving_defaults.max_batch = 8;
    kv_grid.serving_defaults.kv_cache_mb = budget_mb;

    const engine::ResultStore kv_store(runner.run(kv_grid));
    OPTIPLET_REQUIRE(!kv_store.empty(), "KV sweep produced no results");
    for (const auto& r : kv_store.results()) {
      OPTIPLET_REQUIRE(r.serving.has_value(),
                       "serving sweep row without serving metrics");
      const auto& m = *r.serving;
      kv_table.add_row(
          {util::format_fixed(budget_mb, 0),
           util::format_fixed(m.throughput_rps, 0),
           util::format_fixed(static_cast<double>(m.kv_peak_bytes) /
                                  (1 << 20),
                              2),
           util::format_fixed(m.mean_batch, 2),
           util::format_fixed(m.p99_s * 1e3, 2)});
      emit("kv", r);
    }
  }
  std::fputs(kv_table.render().c_str(), stdout);
  std::fputc('\n', stdout);

  std::puts("Transformer serving grid written to "
            "transformer_serving_sweep.csv");
  return 0;
}
