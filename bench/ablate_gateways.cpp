/// \file ablate_gateways.cpp
/// Design-space ablation A2 (paper §VII, open challenge 3): sweep the
/// gateways-per-chiplet count. More gateways mean finer ReSiPI bandwidth
/// granularity and higher peak chiplet bandwidth, but more SerDes/MRG
/// static power.

#include <cstdio>

#include "core/system_simulator.hpp"
#include "dnn/zoo.hpp"
#include "util/table.hpp"

int main() {
  using namespace optiplet;
  using accel::Architecture;

  std::printf(
      "ABLATION A2: gateways-per-chiplet sweep (2.5D-CrossLight-SiPh)\n"
      "Table-1 default: 4 gateways per chiplet (16 wavelengths each).\n\n");

  util::TextTable t({"Gateways/chiplet", "Model", "Latency (ms)",
                     "Power (W)", "EPB (pJ/bit)", "Mean active gws"});
  for (const std::size_t gateways : {1u, 2u, 4u, 8u}) {
    core::SystemConfig cfg = core::default_system_config();
    cfg.photonic.gateways_per_chiplet = gateways;
    const noc::PhotonicInterposer probe(cfg.photonic, cfg.tech.photonic);
    if (!probe.link_budget_feasible()) {
      t.add_row({std::to_string(gateways),
                 "infeasible: MRG row exceeds ring FSR", "-", "-", "-", "-"});
      t.add_separator();
      continue;
    }
    const core::SystemSimulator sim(cfg);
    for (const auto& model : dnn::zoo::all_models()) {
      const auto r = sim.run(model, Architecture::kSiph2p5D);
      t.add_row({std::to_string(gateways), r.model_name,
                 util::format_fixed(r.latency_s * 1e3, 4),
                 util::format_fixed(r.average_power_w, 2),
                 util::format_fixed(r.epb_j_per_bit * 1e12, 1),
                 util::format_fixed(r.mean_active_gateways, 1)});
    }
    t.add_separator();
  }
  std::fputs(t.render().c_str(), stdout);
  std::printf(
      "\nReading: one fat gateway (ReSiPI's critique of PROWAVES) cannot\n"
      "modulate bandwidth to the workload; many thin gateways track demand\n"
      "but pay per-gateway static power on big models.\n");
  return 0;
}
