/// \file table1_modeling_parameters.cpp
/// Regenerates **Table 1** of the paper: the modeling parameters, printed
/// from the live default SystemConfig (so the table can never drift from
/// what the simulators actually use).

#include <cstdio>
#include <string>

#include "core/system_config.hpp"
#include "util/table.hpp"

int main() {
  using namespace optiplet;
  const core::SystemConfig cfg = core::default_system_config();

  std::printf("TABLE 1. MODELING PARAMETERS (from core::SystemConfig)\n\n");

  util::TextTable t({"Parameter", "Value"});
  t.add_row({"Data rate of optical link (per wavelength)",
             util::format_fixed(
                 cfg.photonic.data_rate_per_wavelength_bps / 1e9, 0) +
                 " Gb/s"});
  t.add_row({"Gateway frequency",
             util::format_fixed(cfg.photonic.gateway_clock_hz / 1e9, 0) +
                 " GHz"});
  t.add_row({"Electrical network-on-chip link width",
             std::to_string(cfg.electrical.mesh.link_width_bits) + " bits"});
  t.add_row({"Electrical network-on-chip frequency",
             util::format_fixed(cfg.electrical.mesh.clock_hz / 1e9, 0) +
                 " GHz"});
  t.add_row({"Number of wavelengths",
             std::to_string(cfg.photonic.total_wavelengths)});
  t.add_row({"Number of memory-chiplets", "1"});
  t.add_row({"Number of compute-chiplets",
             std::to_string(cfg.photonic.compute_chiplets)});
  t.add_separator();
  for (const auto& group : cfg.compute_2p5d.groups) {
    const std::string kind = accel::to_string(group.chiplet.kind);
    t.add_row({kind + " MAC: number of chiplets",
               std::to_string(group.chiplet_count)});
    t.add_row({kind + " MAC: MACs per chiplet",
               std::to_string(group.chiplet.units)});
    t.add_row({kind + " MAC: MACs per gateway",
               std::to_string(group.chiplet.units_per_bus)});
  }
  std::fputs(t.render().c_str(), stdout);

  std::printf(
      "\nPaper values: 12 Gb/s, 2 GHz, 128 bits, 2 GHz, 64 wavelengths,\n"
      "1 memory chiplet, 8 compute chiplets; dense 2x4 (1/gw), 7x7 1x8\n"
      "(2/gw), 5x5 2x16 (4/gw), 3x3 3x44 (11/gw) -- all reproduced above.\n");
  return 0;
}
