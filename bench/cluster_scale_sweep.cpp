/// \file cluster_scale_sweep.cpp
/// Rack-scale characterization: aggregate throughput versus package count
/// and front-end balancer policy under a diurnal arrival trace.
///
/// The sweep replays one generated diurnal trace (sinusoidal-rate Poisson,
/// peak ~3x the single-package capacity knee) against racks of 1, 2, and 4
/// interposer packages for each balancer policy, at two replication
/// settings:
///   * **replication tracking the rack** (factor 4, clamped to the package
///     count) — every package hosts a replica, the balancer can always
///     serve locally, and aggregate throughput scales with the rack;
///   * **a single replica** (factor 1) — the tenant lives on one package,
///     so extra packages only add ingress ports: off-ingress arrivals pay
///     the photonic chip-to-chip transfer cost and throughput stays flat.
///
/// Dumps cluster_scale_sweep.csv next to the binary for plotting; CI's
/// tools/check_bench_csv.py trips on scaling or utilization violations.

#include <cstdio>
#include <string>

#include "engine/result_store.hpp"
#include "engine/scenario.hpp"
#include "engine/sweep_runner.hpp"
#include "serve/service_time.hpp"
#include "serve/serving_simulator.hpp"
#include "serve/tracegen.hpp"
#include "util/csv.hpp"
#include "util/require.hpp"
#include "util/table.hpp"

namespace {

using namespace optiplet;

constexpr const char* kModel = "LeNet5";
constexpr const char* kTracePath = "cluster_diurnal_trace.csv";
constexpr std::size_t kTraceRequests = 600;
/// Peak offered load as a multiple of one package's no-batch capacity:
/// deep enough past the knee that a lone package saturates while a
/// replicated 4-package rack still has headroom.
constexpr double kPeakUtilization = 3.0;

constexpr std::size_t kPackageCounts[] = {1, 2, 4};
constexpr cluster::BalancerPolicy kBalancers[] = {
    cluster::BalancerPolicy::kRoundRobin,
    cluster::BalancerPolicy::kLeastLoaded,
    cluster::BalancerPolicy::kLocalityAware};

/// Single-tenant no-batch capacity on the exact oracle the simulator
/// serves with (the same anchor serving_load_sweep uses).
double anchored_capacity_rps(const core::SystemConfig& base) {
  serve::ColocatedSetup setup = serve::make_colocated_setup(
      base, accel::Architecture::kSiph2p5D, serve::split_mix(kModel));
  serve::ServiceTimeOracle oracle(std::move(setup.oracle_tenants),
                                  accel::Architecture::kSiph2p5D);
  return 1.0 / oracle.batch_run(0, 1).latency_s;
}

}  // namespace

int main() {
  const core::SystemConfig base = core::default_system_config();
  const double capacity_rps = anchored_capacity_rps(base);

  // One shared diurnal trace: mean rate at the peak utilization target,
  // one full sinusoid cycle over the whole trace.
  serve::TraceGenSpec tracegen;
  tracegen.profile = serve::TraceProfile::kDiurnal;
  tracegen.base_rps = kPeakUtilization * capacity_rps;
  tracegen.duration_s =
      static_cast<double>(kTraceRequests) / tracegen.base_rps;
  tracegen.seed = 42;
  const auto events = serve::generate_trace(tracegen);
  OPTIPLET_REQUIRE(!events.empty(), "diurnal trace generation was empty");
  OPTIPLET_REQUIRE(serve::write_arrival_trace(kTracePath, events),
                   "cannot write the diurnal arrival trace");
  const double offered_rps =
      static_cast<double>(events.size()) / tracegen.duration_s;
  std::printf("%s rack sweep: capacity %.0f r/s per package, diurnal "
              "trace of %zu arrivals (mean %.0f r/s over %.3f s)\n\n",
              kModel, capacity_rps, events.size(), offered_rps,
              tracegen.duration_s);

  engine::ScenarioGrid grid;
  grid.tenant_mixes = {kModel};
  grid.architectures = {accel::Architecture::kSiph2p5D};
  grid.package_counts.assign(std::begin(kPackageCounts),
                             std::end(kPackageCounts));
  grid.balancer_policies.assign(std::begin(kBalancers),
                                std::end(kBalancers));
  // Factor 4 clamps to the package count, so replication tracks the rack;
  // factor 1 pins the tenant to one package at every rack size.
  grid.replication_factors = {1, 4};
  grid.serving_defaults.trace_path = kTracePath;
  grid.arrival_rates_rps = {offered_rps};

  engine::SweepRunner runner(base);
  const engine::ResultStore store(runner.run(grid));
  OPTIPLET_REQUIRE(!store.empty(), "cluster scale sweep produced no results");

  util::CsvWriter csv("cluster_scale_sweep.csv",
                      {"packages", "balancer", "replication", "offered_rps",
                       "throughput_rps", "goodput_rps", "shed",
                       "shed_fraction", "p50_s", "p99_s",
                       "energy_per_request_j", "transfers",
                       "transfer_latency_s", "transfer_energy_j",
                       "util_min", "util_max"});
  OPTIPLET_REQUIRE(csv.ok(), "cannot write cluster_scale_sweep.csv");

  util::TextTable table({"Pkgs", "Balancer", "Rep", "Thpt (r/s)",
                         "Gput (r/s)", "p99 (us)", "Xfers", "Xfer E (uJ)",
                         "Util min", "Util max"});
  double thpt_1pkg_locality = 0.0;
  double thpt_4pkg_locality = 0.0;
  std::uint64_t single_replica_transfers = 0;
  for (const auto& r : store.results()) {
    OPTIPLET_REQUIRE(r.serving.has_value() && r.cluster.has_value(),
                     "cluster sweep row without rack metrics");
    const auto& m = *r.serving;
    const auto& c = *r.cluster;
    const auto& cs = *r.spec.cluster;
    const double shed_fraction =
        m.offered > 0
            ? static_cast<double>(m.shed) / static_cast<double>(m.offered)
            : 0.0;
    csv.add_row({std::to_string(cs.packages),
                 cluster::to_string(cs.balancer),
                 std::to_string(cs.replication),
                 util::format_general(offered_rps),
                 util::format_general(m.throughput_rps),
                 util::format_general(m.goodput_rps),
                 std::to_string(m.shed), util::format_general(shed_fraction),
                 util::format_general(m.p50_s), util::format_general(m.p99_s),
                 util::format_general(m.energy_per_request_j),
                 std::to_string(c.transfers),
                 util::format_general(c.transfer_latency_s),
                 util::format_general(c.transfer_energy_j),
                 util::format_general(c.util_min),
                 util::format_general(c.util_max)});
    table.add_row({std::to_string(cs.packages),
                   cluster::to_string(cs.balancer),
                   std::to_string(cs.replication),
                   util::format_fixed(m.throughput_rps, 0),
                   util::format_fixed(m.goodput_rps, 0),
                   util::format_fixed(m.p99_s * 1e6, 1),
                   std::to_string(c.transfers),
                   util::format_fixed(c.transfer_energy_j * 1e6, 3),
                   util::format_fixed(c.util_min, 3),
                   util::format_fixed(c.util_max, 3)});
    if (cs.balancer == cluster::BalancerPolicy::kLocalityAware &&
        cs.replication == 4) {
      if (cs.packages == 1) {
        thpt_1pkg_locality = m.throughput_rps;
      } else if (cs.packages == 4) {
        thpt_4pkg_locality = m.throughput_rps;
      }
    }
    if (cs.replication == 1 && cs.packages > 1) {
      single_replica_transfers += c.transfers;
    }
  }
  std::fputs(table.render().c_str(), stdout);

  // The headline claims the tripwires also enforce: a replicated
  // locality-aware rack scales, and a single replica behind many ingress
  // ports really pays for photonic hops.
  OPTIPLET_REQUIRE(thpt_4pkg_locality > thpt_1pkg_locality,
                   "4-package locality-aware rack did not out-serve one "
                   "package at saturating load");
  OPTIPLET_REQUIRE(single_replica_transfers > 0,
                   "single-replica racks recorded no inter-package "
                   "transfers");

  std::printf("\n4-package locality-aware rack: %.0f r/s vs %.0f r/s on "
              "one package (%.2fx)\n",
              thpt_4pkg_locality, thpt_1pkg_locality,
              thpt_4pkg_locality / thpt_1pkg_locality);
  std::printf("Full sweep written to cluster_scale_sweep.csv\n");
  return 0;
}
