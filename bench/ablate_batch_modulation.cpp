/// \file ablate_batch_modulation.cpp
/// Ablations A7/A8 (extensions beyond the paper's single-image OOK
/// defaults): inference batch size, and OOK vs PAM-4 signaling on the
/// photonic interposer (the §II multilevel option [44]).

#include <cstdio>
#include <vector>

#include "core/report.hpp"
#include "core/system_simulator.hpp"
#include "dnn/zoo.hpp"
#include "util/table.hpp"

int main() {
  using namespace optiplet;
  using accel::Architecture;

  // --- A7: batch size ---
  std::printf(
      "ABLATION A7: batch-size sweep (per-image latency; weights stream "
      "once per batch)\n\n");
  util::TextTable bt({"Batch", "Architecture", "Latency/image (ms)",
                      "Power (W)", "EPB (pJ/bit)"});
  const auto vgg = dnn::zoo::make_vgg16();
  for (const unsigned batch : {1u, 2u, 4u, 8u, 16u}) {
    core::SystemConfig cfg = core::default_system_config();
    cfg.batch_size = batch;
    const core::SystemSimulator sim(cfg);
    for (const auto arch :
         {Architecture::kMonolithicCrossLight, Architecture::kSiph2p5D}) {
      const auto r = sim.run(vgg, arch);
      bt.add_row({std::to_string(batch), accel::to_string(arch),
                  util::format_fixed(r.latency_s * 1e3 / batch, 3),
                  util::format_fixed(r.average_power_w, 2),
                  util::format_fixed(r.epb_j_per_bit * 1e12, 1)});
    }
    bt.add_separator();
  }
  std::fputs(bt.render().c_str(), stdout);
  std::printf(
      "\nReading (VGG16, the weight-heaviest model): batching amortizes\n"
      "the 1.1 Gb weight stream, so the DDR-starved monolithic chip gains\n"
      "the most per-image; the SiPh platform is compute-bound earlier.\n\n");

  // --- A8: modulation format ---
  std::printf(
      "ABLATION A8: interposer signaling format (average over 5 models, "
      "SiPh)\n\n");
  util::TextTable mt({"Format", "Avg latency (ms)", "Avg power (W)",
                      "Avg EPB (pJ/bit)", "Broadcast BW (Gb/s)"});
  for (const auto format : {photonics::ModulationFormat::kOok,
                            photonics::ModulationFormat::kPam4}) {
    core::SystemConfig cfg = core::default_system_config();
    cfg.photonic.modulation = format;
    const noc::PhotonicInterposer probe(cfg.photonic, cfg.tech.photonic);
    const core::SystemSimulator sim(cfg);
    std::vector<core::RunResult> runs;
    for (const auto& model : dnn::zoo::all_models()) {
      runs.push_back(sim.run(model, Architecture::kSiph2p5D));
    }
    const auto avg = core::average_runs(photonics::to_string(format), runs);
    mt.add_row({avg.platform, util::format_fixed(avg.latency_s * 1e3, 3),
                util::format_fixed(avg.power_w, 2),
                util::format_fixed(avg.epb_j_per_bit * 1e12, 1),
                util::format_fixed(probe.swmr_bandwidth_bps(64) / 1e9, 0)});
  }
  std::fputs(mt.render().c_str(), stdout);
  std::printf(
      "\nReading: PAM-4 doubles the broadcast to 1536 Gb/s but pays ~6 dB\n"
      "of receiver penalty (4x laser power per wavelength) plus a second\n"
      "modulator ring per channel — at the Table-1 operating point the\n"
      "compute groups, not the network, are the bottleneck, so the extra\n"
      "bandwidth buys little latency and costs power: OOK is the right\n"
      "default, exactly as the paper assumes.\n");
  return 0;
}
