/// \file serving_load_sweep.cpp
/// Request-level serving characterization: per-request latency versus
/// offered load, per batching policy, with the ReSiPI controller in its
/// default adaptive mode and pinned to full gateway provisioning.
///
/// The open-loop arrival process makes the expected hockey-stick visible:
/// below the capacity knee, latency sits near the batch service time; past
/// it the queue grows for the whole (finite) run and the tail explodes.
/// Batching policies push the knee to higher offered loads by amortizing
/// weight traffic and per-layer overheads across the batch — the
/// throughput/latency trade the serving simulator exists to quantify.
///
/// A second section sweeps a co-located scarce-group mix (ResNet50 +
/// DenseNet121, both needing the single 7x7 chiplet) in batch-granular
/// (blocked) versus layer-granular (SET-style pipelined) execution,
/// quantifying the utilization and tail-latency win of handing the scarce
/// group off at layer boundaries instead of locking it per batch.
///
/// Dumps serving_load_sweep.csv next to the binary for plotting; CI's
/// tools/check_bench_csv.py trips on sanity violations in it.

#include <cstdio>

#include "dnn/zoo.hpp"
#include "engine/result_store.hpp"
#include "engine/scenario.hpp"
#include "engine/sweep_runner.hpp"
#include "serve/service_time.hpp"
#include "serve/serving_simulator.hpp"
#include "util/csv.hpp"
#include "util/require.hpp"
#include "util/table.hpp"

namespace {

using namespace optiplet;

constexpr const char* kModel = "LeNet5";
constexpr std::uint64_t kRequestsPerPoint = 1500;

/// Offered load as a fraction of the no-batch capacity 1/D(1).
constexpr double kUtilizations[] = {0.2, 0.4, 0.6, 0.8,
                                    0.9, 1.0, 1.1, 1.3};

/// The pipelined-vs-blocked section: a scarce-group co-location swept
/// from half the blocked capacity to deep saturation.
constexpr const char* kMix = "ResNet50+DenseNet121";
constexpr std::uint64_t kMixRequestsPerPoint = 240;
constexpr double kMixUtilizations[] = {0.5, 1.0, 2.0, 4.0};

/// Batch-granular capacity anchor of a fully-serialized shared-group mix:
/// every batch locks the scarce pool, so the executors alternate and the
/// aggregate capacity is n / (sum of co-located batch-1 service times) —
/// computed on the exact partitions the simulator serves.
double mix_capacity(const core::SystemConfig& base, const char* mix) {
  serve::ColocatedSetup setup = serve::make_colocated_setup(
      base, accel::Architecture::kSiph2p5D, serve::split_mix(mix));
  serve::ServiceTimeOracle oracle(std::move(setup.oracle_tenants),
                                  accel::Architecture::kSiph2p5D);
  double service_sum_s = 0.0;
  for (std::size_t t = 0; t < oracle.tenant_count(); ++t) {
    service_sum_s += oracle.batch_run(t, 1).latency_s;
  }
  return static_cast<double>(oracle.tenant_count()) / service_sum_s;
}

}  // namespace

int main() {
  const core::SystemConfig base = core::default_system_config();

  // The no-batch capacity anchor: one request's service time in isolation.
  serve::ServiceTimeOracle oracle(
      {{dnn::zoo::by_name(kModel), base}}, accel::Architecture::kSiph2p5D);
  const double service_s = oracle.batch_run(0, 1).latency_s;
  const double capacity_rps = 1.0 / service_s;
  std::printf("%s on 2.5D-CrossLight-SiPh: batch-1 service %.1f us, "
              "no-batch capacity %.0f requests/s\n\n",
              kModel, service_s * 1e6, capacity_rps);

  engine::ScenarioGrid grid;
  grid.tenant_mixes = {kModel};
  grid.architectures = {accel::Architecture::kSiph2p5D};
  grid.batch_policies = {serve::BatchPolicy::kNone,
                         serve::BatchPolicy::kFixedSize,
                         serve::BatchPolicy::kDeadline};
  for (const double util : kUtilizations) {
    grid.arrival_rates_rps.push_back(util * capacity_rps);
  }
  // Section axis: ReSiPI adaptive (min 1 active gateway) vs pinned to the
  // full complement (no reconfiguration, maximum static provisioning).
  const auto gateways =
      static_cast<double>(base.photonic.gateways_per_chiplet);
  grid.override_axes = {{"resipi.min_active_gateways", {1.0, gateways}}};
  grid.serving_defaults.requests = kRequestsPerPoint;
  grid.serving_defaults.max_batch = 8;
  grid.serving_defaults.max_wait_s = 200e-6;

  engine::SweepRunner runner(base);
  const engine::ResultStore store(runner.run(grid));
  OPTIPLET_REQUIRE(!store.empty(), "serving load sweep produced no results");

  util::CsvWriter csv("serving_load_sweep.csv",
                      {"resipi_mode", "policy", "pipeline", "tenant_mix",
                       "offered_rps", "offered_util", "throughput_rps",
                       "mean_s", "p50_s", "p95_s", "p99_s",
                       "sla_violation_rate", "mean_batch", "utilization",
                       "energy_per_request_j"});
  OPTIPLET_REQUIRE(csv.ok(), "cannot write serving_load_sweep.csv");
  const auto emit = [&csv](const char* resipi_mode,
                           const engine::ScenarioResult& r,
                           double capacity) {
    const auto& m = *r.serving;
    const double offered = r.spec.serving->arrival_rps;
    csv.add_row({resipi_mode, serve::to_string(r.spec.serving->policy),
                 serve::to_string(r.spec.serving->pipeline),
                 r.spec.serving->tenant_mix, util::format_general(offered),
                 util::format_general(offered / capacity),
                 util::format_general(m.throughput_rps),
                 util::format_general(m.mean_latency_s),
                 util::format_general(m.p50_s),
                 util::format_general(m.p95_s),
                 util::format_general(m.p99_s),
                 util::format_general(m.sla_violation_rate),
                 util::format_general(m.mean_batch),
                 util::format_general(m.utilization),
                 util::format_general(m.energy_per_request_j)});
  };

  for (const bool pinned : {false, true}) {
    std::printf("=== ReSiPI %s ===\n",
                pinned ? "pinned (all gateways active)" : "adaptive");
    util::TextTable table({"Policy", "Offered (r/s)", "Util", "Thpt (r/s)",
                           "p50 (us)", "p99 (us)", "E/req (mJ)"});
    for (const auto& r : store.results()) {
      OPTIPLET_REQUIRE(r.serving.has_value(),
                       "serving sweep row without serving metrics");
      const bool row_pinned = r.spec.overrides.front().second == gateways;
      if (row_pinned != pinned) {
        continue;
      }
      const auto& m = *r.serving;
      const double offered = r.spec.serving->arrival_rps;
      table.add_row({serve::to_string(r.spec.serving->policy),
                     util::format_fixed(offered, 0),
                     util::format_fixed(offered / capacity_rps, 2),
                     util::format_fixed(m.throughput_rps, 0),
                     util::format_fixed(m.p50_s * 1e6, 1),
                     util::format_fixed(m.p99_s * 1e6, 1),
                     util::format_fixed(m.energy_per_request_j * 1e3, 3)});
      emit(pinned ? "pinned" : "adaptive", r, capacity_rps);
    }
    std::fputs(table.render().c_str(), stdout);
    std::fputc('\n', stdout);
  }

  // --- Pipelined vs blocked on a scarce-group co-location ---
  // ResNet50 + DenseNet121 both need the single 7x7 chiplet, so the
  // batch-granular pool serializes whole batches on it; layer-granular
  // execution hands it off at layer boundaries (one ReSiPI retune per
  // cross-tenant handoff) and pipelines everything else.
  const double mix_capacity_rps = mix_capacity(base, kMix);
  engine::ScenarioGrid pipeline_grid;
  pipeline_grid.tenant_mixes = {kMix};
  pipeline_grid.architectures = {accel::Architecture::kSiph2p5D};
  pipeline_grid.batch_policies = {serve::BatchPolicy::kNone};
  pipeline_grid.pipeline_modes = {serve::PipelineMode::kBatchGranular,
                                  serve::PipelineMode::kLayerGranular};
  for (const double util : kMixUtilizations) {
    pipeline_grid.arrival_rates_rps.push_back(util * mix_capacity_rps);
  }
  pipeline_grid.serving_defaults.requests = kMixRequestsPerPoint;

  const engine::ResultStore pipeline_store(runner.run(pipeline_grid));
  OPTIPLET_REQUIRE(!pipeline_store.empty(),
                   "pipelined serving sweep produced no results");

  std::printf("=== %s: blocked (batch-granular) vs pipelined "
              "(layer-granular) ===\n",
              kMix);
  util::TextTable pipe_table({"Pipeline", "Offered (r/s)", "Util",
                              "Thpt (r/s)", "Pool util", "p50 (us)",
                              "p99 (us)", "Handoffs"});
  for (const auto& r : pipeline_store.results()) {
    OPTIPLET_REQUIRE(r.serving.has_value(),
                     "serving sweep row without serving metrics");
    const auto& m = *r.serving;
    const double offered = r.spec.serving->arrival_rps;
    pipe_table.add_row(
        {serve::to_string(r.spec.serving->pipeline),
         util::format_fixed(offered, 0),
         util::format_fixed(offered / mix_capacity_rps, 2),
         util::format_fixed(m.throughput_rps, 0),
         util::format_fixed(m.utilization, 3),
         util::format_fixed(m.p50_s * 1e6, 1),
         util::format_fixed(m.p99_s * 1e6, 1),
         std::to_string(m.shared_handoffs)});
    emit("adaptive", r, mix_capacity_rps);
  }
  std::fputs(pipe_table.render().c_str(), stdout);
  std::printf("\nFull sweep written to serving_load_sweep.csv\n");
  return 0;
}
