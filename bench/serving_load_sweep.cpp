/// \file serving_load_sweep.cpp
/// Request-level serving characterization: per-request latency versus
/// offered load, per batching policy, with the ReSiPI controller in its
/// default adaptive mode and pinned to full gateway provisioning.
///
/// The open-loop arrival process makes the expected hockey-stick visible:
/// below the capacity knee, latency sits near the batch service time; past
/// it the queue grows for the whole (finite) run and the tail explodes.
/// Batching policies push the knee to higher offered loads by amortizing
/// weight traffic and per-layer overheads across the batch — the
/// throughput/latency trade the serving simulator exists to quantify.
///
/// A second section sweeps a co-located scarce-group mix (ResNet50 +
/// DenseNet121, both needing the single 7x7 chiplet) in batch-granular
/// (blocked) versus layer-granular (SET-style pipelined) execution,
/// quantifying the utilization and tail-latency win of handing the scarce
/// group off at layer boundaries instead of locking it per batch.
///
/// A third section drives the same tenant through a closed-loop client
/// pool (users x think time): offered load self-throttles, so throughput
/// flattens at the capacity knee instead of the queue blowing up — the
/// closed-loop hockey-stick is in throughput, not latency.
///
/// A fourth section pits SLA-aware admission control (shed) against the
/// admit-all baseline across the knee: shedding converts an unbounded
/// tail into bounded p99 at the cost of rejected requests, and goodput
/// (SLA-met completions/s) replaces throughput as the honest metric.
///
/// Every section derives its capacity anchor through one shared
/// make_colocated_setup-based helper — the exact partitions + oracle
/// wiring serve::simulate() runs on — and the sweep reuses one
/// SweepRunner so the scenario memo cache carries repeated points across
/// sections (asserted below).
///
/// Dumps serving_load_sweep.csv next to the binary for plotting; CI's
/// tools/check_bench_csv.py trips on sanity violations in it.

#include <cstdio>
#include <iterator>
#include <string>

#include "dnn/zoo.hpp"
#include "engine/result_store.hpp"
#include "engine/scenario.hpp"
#include "engine/sweep_runner.hpp"
#include "serve/service_time.hpp"
#include "serve/serving_simulator.hpp"
#include "util/csv.hpp"
#include "util/require.hpp"
#include "util/table.hpp"

namespace {

using namespace optiplet;

constexpr const char* kModel = "LeNet5";
constexpr std::uint64_t kRequestsPerPoint = 1500;

/// Offered load as a fraction of the no-batch capacity 1/D(1).
constexpr double kUtilizations[] = {0.2, 0.4, 0.6, 0.8,
                                    0.9, 1.0, 1.1, 1.3};

/// The pipelined-vs-blocked section: a scarce-group co-location swept
/// from half the blocked capacity to deep saturation.
constexpr const char* kMix = "ResNet50+DenseNet121";
constexpr std::uint64_t kMixRequestsPerPoint = 240;
constexpr double kMixUtilizations[] = {0.5, 1.0, 2.0, 4.0};

/// Closed-loop section: user-pool sizes around the capacity knee (think
/// time is set so ~kClosedLoopKneeUsers users saturate the executor).
constexpr unsigned kClosedLoopUsers[] = {4, 16, 64, 256};
constexpr double kClosedLoopKneeUsers = 64.0;

/// Shed-vs-no-shed section: load points shared with the hockey-stick
/// sweep, so the admit-all rows are exact scenario-cache hits.
constexpr double kShedUtilizations[] = {0.8, 1.0, 1.3};

/// Batch-granular capacity anchor computed on the *exact* partitions the
/// simulator serves — the one shared helper every section anchors on.
/// Single tenant: 1 / D(1). Fully-serialized shared-group mix: every
/// batch locks the scarce pool, so the executors alternate and the
/// aggregate capacity is n / (sum of co-located batch-1 service times).
double anchored_capacity_rps(const core::SystemConfig& base,
                             const char* mix) {
  serve::ColocatedSetup setup = serve::make_colocated_setup(
      base, accel::Architecture::kSiph2p5D, serve::split_mix(mix));
  serve::ServiceTimeOracle oracle(std::move(setup.oracle_tenants),
                                  accel::Architecture::kSiph2p5D);
  double service_sum_s = 0.0;
  for (std::size_t t = 0; t < oracle.tenant_count(); ++t) {
    service_sum_s += oracle.batch_run(t, 1).latency_s;
  }
  return static_cast<double>(oracle.tenant_count()) / service_sum_s;
}

}  // namespace

int main() {
  const core::SystemConfig base = core::default_system_config();

  // The no-batch capacity anchor: one request's service time in isolation.
  const double capacity_rps = anchored_capacity_rps(base, kModel);
  const double service_s = 1.0 / capacity_rps;
  std::printf("%s on 2.5D-CrossLight-SiPh: batch-1 service %.1f us, "
              "no-batch capacity %.0f requests/s\n\n",
              kModel, service_s * 1e6, capacity_rps);

  engine::ScenarioGrid grid;
  grid.tenant_mixes = {kModel};
  grid.architectures = {accel::Architecture::kSiph2p5D};
  grid.batch_policies = {serve::BatchPolicy::kNone,
                         serve::BatchPolicy::kFixedSize,
                         serve::BatchPolicy::kDeadline};
  for (const double util : kUtilizations) {
    grid.arrival_rates_rps.push_back(util * capacity_rps);
  }
  // Section axis: ReSiPI adaptive (min 1 active gateway) vs pinned to the
  // full complement (no reconfiguration, maximum static provisioning).
  const auto gateways =
      static_cast<double>(base.photonic.gateways_per_chiplet);
  grid.override_axes = {{"resipi.min_active_gateways", {1.0, gateways}}};
  grid.serving_defaults.requests = kRequestsPerPoint;
  grid.serving_defaults.max_batch = 8;
  grid.serving_defaults.max_wait_s = 200e-6;

  engine::SweepRunner runner(base);
  const engine::ResultStore store(runner.run(grid));
  OPTIPLET_REQUIRE(!store.empty(), "serving load sweep produced no results");

  util::CsvWriter csv("serving_load_sweep.csv",
                      {"resipi_mode", "policy", "pipeline", "tenant_mix",
                       "source", "users", "think_s", "admission",
                       "offered_rps", "offered_util", "throughput_rps",
                       "goodput_rps", "shed", "shed_fraction", "mean_s",
                       "p50_s", "p95_s", "p99_s", "sla_violation_rate",
                       "mean_batch", "utilization",
                       "energy_per_request_j"});
  OPTIPLET_REQUIRE(csv.ok(), "cannot write serving_load_sweep.csv");
  // One emitter for every section. Open-loop rows carry the spec's
  // offered rate; closed-loop rows carry the client pool's upper bound
  // (total users / think time) as their load axis, with `users` the
  // total across the mix.
  const auto emit = [&csv](const char* resipi_mode,
                           const engine::ScenarioResult& r,
                           double capacity) {
    const auto& m = *r.serving;
    const auto& s = *r.spec.serving;
    const bool closed = s.source == serve::ArrivalSource::kClosedLoop;
    const double users_total =
        static_cast<double>(s.users) *
        static_cast<double>(serve::split_mix(s.tenant_mix).size());
    const double offered =
        closed ? users_total / s.think_s : s.arrival_rps;
    const double shed_fraction =
        m.offered > 0
            ? static_cast<double>(m.shed) / static_cast<double>(m.offered)
            : 0.0;
    csv.add_row({resipi_mode, serve::to_string(s.policy),
                 serve::to_string(s.pipeline), s.tenant_mix,
                 serve::to_string(s.source),
                 closed ? util::format_general(users_total) : "0",
                 closed ? util::format_general(s.think_s) : "0",
                 serve::to_string(s.admission), util::format_general(offered),
                 util::format_general(offered / capacity),
                 util::format_general(m.throughput_rps),
                 util::format_general(m.goodput_rps),
                 std::to_string(m.shed), util::format_general(shed_fraction),
                 util::format_general(m.mean_latency_s),
                 util::format_general(m.p50_s),
                 util::format_general(m.p95_s),
                 util::format_general(m.p99_s),
                 util::format_general(m.sla_violation_rate),
                 util::format_general(m.mean_batch),
                 util::format_general(m.utilization),
                 util::format_general(m.energy_per_request_j)});
  };

  for (const bool pinned : {false, true}) {
    std::printf("=== ReSiPI %s ===\n",
                pinned ? "pinned (all gateways active)" : "adaptive");
    util::TextTable table({"Policy", "Offered (r/s)", "Util", "Thpt (r/s)",
                           "p50 (us)", "p99 (us)", "E/req (mJ)"});
    for (const auto& r : store.results()) {
      OPTIPLET_REQUIRE(r.serving.has_value(),
                       "serving sweep row without serving metrics");
      const bool row_pinned = r.spec.overrides.front().second == gateways;
      if (row_pinned != pinned) {
        continue;
      }
      const auto& m = *r.serving;
      const double offered = r.spec.serving->arrival_rps;
      table.add_row({serve::to_string(r.spec.serving->policy),
                     util::format_fixed(offered, 0),
                     util::format_fixed(offered / capacity_rps, 2),
                     util::format_fixed(m.throughput_rps, 0),
                     util::format_fixed(m.p50_s * 1e6, 1),
                     util::format_fixed(m.p99_s * 1e6, 1),
                     util::format_fixed(m.energy_per_request_j * 1e3, 3)});
      emit(pinned ? "pinned" : "adaptive", r, capacity_rps);
    }
    std::fputs(table.render().c_str(), stdout);
    std::fputc('\n', stdout);
  }

  // --- Pipelined vs blocked on a scarce-group co-location ---
  // ResNet50 + DenseNet121 both need the single 7x7 chiplet, so the
  // batch-granular pool serializes whole batches on it; layer-granular
  // execution hands it off at layer boundaries (one ReSiPI retune per
  // cross-tenant handoff) and pipelines everything else.
  const double mix_capacity_rps = anchored_capacity_rps(base, kMix);
  engine::ScenarioGrid pipeline_grid;
  pipeline_grid.tenant_mixes = {kMix};
  pipeline_grid.architectures = {accel::Architecture::kSiph2p5D};
  pipeline_grid.batch_policies = {serve::BatchPolicy::kNone};
  pipeline_grid.pipeline_modes = {serve::PipelineMode::kBatchGranular,
                                  serve::PipelineMode::kLayerGranular};
  for (const double util : kMixUtilizations) {
    pipeline_grid.arrival_rates_rps.push_back(util * mix_capacity_rps);
  }
  pipeline_grid.serving_defaults.requests = kMixRequestsPerPoint;

  const engine::ResultStore pipeline_store(runner.run(pipeline_grid));
  OPTIPLET_REQUIRE(!pipeline_store.empty(),
                   "pipelined serving sweep produced no results");

  std::printf("=== %s: blocked (batch-granular) vs pipelined "
              "(layer-granular) ===\n",
              kMix);
  util::TextTable pipe_table({"Pipeline", "Offered (r/s)", "Util",
                              "Thpt (r/s)", "Pool util", "p50 (us)",
                              "p99 (us)", "Handoffs"});
  for (const auto& r : pipeline_store.results()) {
    OPTIPLET_REQUIRE(r.serving.has_value(),
                     "serving sweep row without serving metrics");
    const auto& m = *r.serving;
    const double offered = r.spec.serving->arrival_rps;
    pipe_table.add_row(
        {serve::to_string(r.spec.serving->pipeline),
         util::format_fixed(offered, 0),
         util::format_fixed(offered / mix_capacity_rps, 2),
         util::format_fixed(m.throughput_rps, 0),
         util::format_fixed(m.utilization, 3),
         util::format_fixed(m.p50_s * 1e6, 1),
         util::format_fixed(m.p99_s * 1e6, 1),
         std::to_string(m.shared_handoffs)});
    emit("adaptive", r, mix_capacity_rps);
  }
  std::fputs(pipe_table.render().c_str(), stdout);
  std::fputc('\n', stdout);

  // --- Closed-loop client pool: the self-throttling hockey-stick ---
  // Think time is pinned so kClosedLoopKneeUsers users offer exactly the
  // open-loop capacity; past the knee, extra users queue inside the
  // client pool (each waits for its response), so measured throughput
  // flattens at capacity instead of the tail exploding.
  engine::ScenarioGrid closed_grid;
  closed_grid.tenant_mixes = {kModel};
  closed_grid.architectures = {accel::Architecture::kSiph2p5D};
  closed_grid.batch_policies = {serve::BatchPolicy::kNone};
  closed_grid.arrival_sources = {serve::ArrivalSource::kClosedLoop};
  closed_grid.user_counts.assign(std::begin(kClosedLoopUsers),
                                 std::end(kClosedLoopUsers));
  closed_grid.serving_defaults.think_s = kClosedLoopKneeUsers * service_s;
  closed_grid.serving_defaults.requests = kRequestsPerPoint;

  const engine::ResultStore closed_store(runner.run(closed_grid));
  OPTIPLET_REQUIRE(!closed_store.empty(),
                   "closed-loop serving sweep produced no results");

  std::printf("=== %s closed-loop clients (think %.0f us) ===\n", kModel,
              closed_grid.serving_defaults.think_s * 1e6);
  util::TextTable closed_table({"Users", "Bound (r/s)", "Bound util",
                                "Thpt (r/s)", "p50 (us)", "p99 (us)",
                                "Util"});
  for (const auto& r : closed_store.results()) {
    OPTIPLET_REQUIRE(r.serving.has_value(),
                     "serving sweep row without serving metrics");
    const auto& m = *r.serving;
    const auto& s = *r.spec.serving;
    const double bound_rps = static_cast<double>(s.users) / s.think_s;
    closed_table.add_row({std::to_string(s.users),
                          util::format_fixed(bound_rps, 0),
                          util::format_fixed(bound_rps / capacity_rps, 2),
                          util::format_fixed(m.throughput_rps, 0),
                          util::format_fixed(m.p50_s * 1e6, 1),
                          util::format_fixed(m.p99_s * 1e6, 1),
                          util::format_fixed(m.utilization, 3)});
    emit("adaptive", r, capacity_rps);
  }
  std::fputs(closed_table.render().c_str(), stdout);
  std::fputc('\n', stdout);

  // --- SLA-aware shedding vs admit-all across the knee ---
  // Same (rate, policy, ReSiPI) points as the hockey-stick sweep, so the
  // admit-all rows must come straight from the scenario memo cache.
  const std::size_t hits_before = runner.cache_hits();
  engine::ScenarioGrid shed_grid;
  shed_grid.tenant_mixes = {kModel};
  shed_grid.architectures = {accel::Architecture::kSiph2p5D};
  shed_grid.batch_policies = {serve::BatchPolicy::kNone};
  shed_grid.admission_policies = {serve::AdmissionPolicy::kAdmitAll,
                                  serve::AdmissionPolicy::kSlaShed};
  for (const double util : kShedUtilizations) {
    shed_grid.arrival_rates_rps.push_back(util * capacity_rps);
  }
  shed_grid.override_axes = {{"resipi.min_active_gateways", {1.0}}};
  shed_grid.serving_defaults.requests = kRequestsPerPoint;
  shed_grid.serving_defaults.max_batch = 8;
  shed_grid.serving_defaults.max_wait_s = 200e-6;

  const engine::ResultStore shed_store(runner.run(shed_grid));
  OPTIPLET_REQUIRE(!shed_store.empty(),
                   "shed serving sweep produced no results");
  const std::size_t shed_hits = runner.cache_hits() - hits_before;
  OPTIPLET_REQUIRE(
      shed_hits >= std::size(kShedUtilizations),
      "admit-all rows did not hit the scenario memo cache across sections");

  std::printf("=== %s admit-all vs SLA-aware shedding (%zu cached "
              "points reused) ===\n",
              kModel, shed_hits);
  util::TextTable shed_table({"Admission", "Offered (r/s)", "Util",
                              "Thpt (r/s)", "Gput (r/s)", "Shed frac",
                              "p99 (us)", "SLA viol"});
  for (const auto& r : shed_store.results()) {
    OPTIPLET_REQUIRE(r.serving.has_value(),
                     "serving sweep row without serving metrics");
    const auto& m = *r.serving;
    const auto& s = *r.spec.serving;
    const double offered = s.arrival_rps;
    const double shed_fraction =
        m.offered > 0
            ? static_cast<double>(m.shed) / static_cast<double>(m.offered)
            : 0.0;
    shed_table.add_row({serve::to_string(s.admission),
                        util::format_fixed(offered, 0),
                        util::format_fixed(offered / capacity_rps, 2),
                        util::format_fixed(m.throughput_rps, 0),
                        util::format_fixed(m.goodput_rps, 0),
                        util::format_fixed(shed_fraction, 3),
                        util::format_fixed(m.p99_s * 1e6, 1),
                        util::format_fixed(m.sla_violation_rate, 3)});
    emit("adaptive", r, capacity_rps);
  }
  std::fputs(shed_table.render().c_str(), stdout);
  std::printf("\nFull sweep written to serving_load_sweep.csv\n");
  return 0;
}
