/// \file optiplet_cluster.cpp
/// Command-line front end of the rack-scale cluster simulator: declare
/// the tenant mix and the rack shape (package count, balancer policy,
/// replication), evaluate the cluster grid on a worker pool, and dump
/// the rack throughput/tail-latency/transfer columns as CSV.
///
/// Examples:
///   optiplet_cluster --tenants LeNet5 --packages 1,2,4 --rates 2000
///   optiplet_cluster --tenants ResNet50,LeNet5 --packages 2 \
///       --balancers rr,least --replication-mix 1+2
///   optiplet_cluster --tenants LeNet5 --packages 4 --replication 4 \
///       --balancers locality --rates 4000
///   optiplet_cluster --trace arrivals.csv --tenants LeNet5 --packages 2

#include <algorithm>
#include <cstdio>
#include <optional>
#include <string>
#include <vector>

#include "cli_support.hpp"
#include "dnn/zoo.hpp"
#include "engine/result_store.hpp"
#include "engine/scenario.hpp"
#include "engine/sweep_runner.hpp"
#include "util/table.hpp"

namespace {

using namespace optiplet;
using cli::join;
using cli::parse_count;
using cli::parse_double;
using cli::split;

constexpr const char* kUsage =
    R"(optiplet_cluster — multi-package rack serving simulator

Runs one shared arrival stream against a rack of N interposer packages
(each a full Table-1 chiplet pool wrapping its own serving simulator)
joined by board-level photonic links. A front-end load balancer picks
the serving replica per request; off-ingress requests pay the photonic
link-budget transfer cost. Reports the merged rack throughput, goodput,
tail latency, shed counts, transfer charges, and energy per request.

  --tenants NAMES      comma list of co-located Table-2 models
                       (default LeNet5; see --list-models)
  --rates LIST         comma list of aggregate offered loads [requests/s]
                       (default 200; split evenly over the tenants;
                       open-loop only)
  --packages LIST      comma list of rack package counts (default 4)
  --balancers LIST     comma list of rr|least|locality (default locality)
  --replication LIST   comma list of replicas per tenant, each clamped to
                       the package count (default 1)
  --replication-mix M  '+'-joined per-tenant replication factors aligned
                       with --tenants (e.g. 1+2); overrides --replication
  --link-length M      board-level link length between packages [m]
                       (default 0.25)
  --link-wavelengths N WDM channels per inter-package link (default 16)
  --policies LIST      comma list of none|size|deadline (default none)
  --admission LIST     comma list of all|shed (default all)
  --sources LIST       comma list of open|closed arrival sources
                       (default open)
  --users LIST         comma list of closed-loop users per tenant
                       (default 16; implies --sources closed when
                       --sources is not given)
  --max-batch K        batch bound for size/deadline policies (default 8)
  --max-wait S         deadline policy: max queue wait [s] (default 1e-3)
  --requests N         total arrivals across tenants (default 2000)
  --seed S             arrival-process seed (default 42)
  --sla S              latency SLA [s]; 0 derives 10x the batch-1 service
                       time per tenant (default 0)
  --trace FILE         replay a CSV arrival trace (arrival_s[,tenant])
                       instead of Poisson arrivals (see optiplet_tracegen)
  --arch NAME          mono|elec|siph (default siph)
  --fidelity LIST      comma list of analytical|cycle (default analytical)
  --threads N          worker threads; must be a positive integer
                       (default: hardware concurrency)
  --out FILE           output CSV path (default cluster.csv)
  --quiet              suppress the progress meter
  --list-models        print the Table-2 model names and exit
  --help               this text

Value flags also accept the --flag=value spelling (e.g. --packages=1,4).
)";

int fail(const std::string& message) {
  std::fprintf(stderr, "optiplet_cluster: %s\n", message.c_str());
  std::fprintf(stderr, "Run with --help for usage.\n");
  return 2;
}

std::string format_us(double seconds) {
  return util::format_fixed(seconds * 1e6, 1);
}

}  // namespace

int main(int argc, char** argv) {
  engine::ScenarioGrid grid;
  grid.serving_defaults.requests = 2000;
  grid.cluster_defaults.packages = 4;
  std::vector<std::string> tenants = {"LeNet5"};
  accel::Architecture arch = accel::Architecture::kSiph2p5D;
  std::size_t threads = 0;
  std::string out_path = "cluster.csv";
  bool quiet = false;

  cli::FlagCursor cursor(argc, argv);
  while (cursor.next()) {
    const std::string& arg = cursor.flag();
    if (cursor.has_inline_value() &&
        (arg == "--help" || arg == "-h" || arg == "--quiet" ||
         arg == "--list-models")) {
      return fail("flag does not take a value: " + arg);
    }
    if (arg == "--help" || arg == "-h") {
      std::fputs(kUsage, stdout);
      return 0;
    }
    if (arg == "--list-models") {
      for (const auto& name : dnn::zoo::model_names()) {
        std::printf("%s\n", name.c_str());
      }
      return 0;
    }
    if (arg == "--quiet") {
      quiet = true;
      continue;
    }
    const bool known_value_flag =
        arg == "--tenants" || arg == "--rates" || arg == "--packages" ||
        arg == "--balancers" || arg == "--replication" ||
        arg == "--replication-mix" || arg == "--link-length" ||
        arg == "--link-wavelengths" || arg == "--policies" ||
        arg == "--admission" || arg == "--sources" || arg == "--users" ||
        arg == "--max-batch" || arg == "--max-wait" ||
        arg == "--requests" || arg == "--seed" || arg == "--sla" ||
        arg == "--trace" || arg == "--arch" || arg == "--fidelity" ||
        arg == "--threads" || arg == "--out";
    if (!known_value_flag) {
      return fail("unknown flag: " + arg);
    }
    const auto value = cursor.value();
    if (!value) {
      return fail("missing value for " + arg);
    }
    if (arg == "--tenants") {
      const auto known = dnn::zoo::model_names();
      tenants = split(*value, ',');
      for (const auto& name : tenants) {
        if (std::find(known.begin(), known.end(), name) == known.end()) {
          return fail("unknown model: " + name +
                      " (valid: " + join(known, ", ") + ")");
        }
      }
    } else if (arg == "--rates") {
      for (const auto& text : split(*value, ',')) {
        const auto rate = parse_double(text);
        if (!rate || *rate <= 0.0) {
          return fail("bad arrival rate: " + text);
        }
        grid.arrival_rates_rps.push_back(*rate);
      }
    } else if (arg == "--packages") {
      for (const auto& text : split(*value, ',')) {
        const auto count = parse_count(text);
        if (!count || *count == 0) {
          return fail("bad package count: " + text);
        }
        grid.package_counts.push_back(*count);
      }
    } else if (arg == "--balancers") {
      for (const auto& name : split(*value, ',')) {
        const auto policy = cluster::balancer_policy_from_string(name);
        if (!policy) {
          return fail("unknown balancer policy: " + name +
                      " (valid: rr, least, locality)");
        }
        grid.balancer_policies.push_back(*policy);
      }
    } else if (arg == "--replication") {
      for (const auto& text : split(*value, ',')) {
        const auto factor = parse_count(text);
        if (!factor || *factor == 0) {
          return fail("bad replication factor: " + text);
        }
        grid.replication_factors.push_back(*factor);
      }
    } else if (arg == "--replication-mix") {
      grid.cluster_defaults.replication_mix = *value;
    } else if (arg == "--link-length") {
      const auto length = parse_double(*value);
      if (!length || *length <= 0.0) {
        return fail("bad link length: " + *value);
      }
      grid.cluster_defaults.link_length_m = *length;
    } else if (arg == "--link-wavelengths") {
      const auto count = parse_count(*value);
      if (!count || *count == 0) {
        return fail("bad link wavelength count: " + *value);
      }
      grid.cluster_defaults.link_wavelengths = *count;
    } else if (arg == "--policies") {
      for (const auto& name : split(*value, ',')) {
        const auto policy = serve::batch_policy_from_string(name);
        if (!policy) {
          return fail("unknown batch policy: " + name +
                      " (valid: none, size, deadline)");
        }
        grid.batch_policies.push_back(*policy);
      }
    } else if (arg == "--admission") {
      for (const auto& name : split(*value, ',')) {
        const auto admission = serve::admission_policy_from_string(name);
        if (!admission) {
          return fail("unknown admission policy: " + name +
                      " (valid: all, shed)");
        }
        grid.admission_policies.push_back(*admission);
      }
    } else if (arg == "--sources") {
      for (const auto& name : split(*value, ',')) {
        const auto source = serve::arrival_source_from_string(name);
        if (!source) {
          return fail("unknown arrival source: " + name +
                      " (valid: open, closed)");
        }
        grid.arrival_sources.push_back(*source);
      }
    } else if (arg == "--users") {
      for (const auto& text : split(*value, ',')) {
        const auto users = parse_count(text);
        if (!users || *users == 0) {
          return fail("bad user count: " + text);
        }
        grid.user_counts.push_back(static_cast<unsigned>(*users));
      }
    } else if (arg == "--max-batch") {
      const auto k = parse_count(*value);
      if (!k || *k == 0) {
        return fail("bad max batch: " + *value);
      }
      grid.serving_defaults.max_batch = static_cast<unsigned>(*k);
    } else if (arg == "--max-wait") {
      const auto wait = parse_double(*value);
      if (!wait || *wait < 0.0) {
        return fail("bad max wait: " + *value);
      }
      grid.serving_defaults.max_wait_s = *wait;
    } else if (arg == "--requests") {
      const auto n = parse_count(*value);
      if (!n || *n == 0) {
        return fail("bad request count: " + *value);
      }
      grid.serving_defaults.requests = *n;
    } else if (arg == "--seed") {
      const auto seed = parse_count(*value);
      if (!seed) {
        return fail("bad seed: " + *value);
      }
      grid.serving_defaults.seed = *seed;
    } else if (arg == "--sla") {
      const auto sla = parse_double(*value);
      if (!sla || *sla < 0.0) {
        return fail("bad SLA: " + *value);
      }
      grid.serving_defaults.sla_s = *sla;
    } else if (arg == "--trace") {
      grid.serving_defaults.trace_path = *value;
    } else if (arg == "--arch") {
      const auto parsed = engine::architecture_from_string(*value);
      if (!parsed) {
        return fail("unknown architecture: " + *value +
                    " (valid: mono, elec, siph)");
      }
      arch = *parsed;
    } else if (arg == "--fidelity") {
      for (const auto& name : split(*value, ',')) {
        const auto fid = engine::fidelity_from_string(name);
        if (!fid) {
          return fail("unknown fidelity: " + name +
                      " (valid: analytical, cycle)");
        }
        grid.fidelities.push_back(*fid);
      }
    } else if (arg == "--threads") {
      const auto count = parse_count(*value);
      if (!count || *count == 0) {
        return fail("bad thread count: " + *value +
                    " (need a positive integer; omit the flag for "
                    "hardware concurrency)");
      }
      threads = *count;
    } else {  // --out, the last known_value_flag
      out_path = *value;
    }
  }

  grid.architectures = {arch};
  grid.tenant_mixes = {join(tenants, "+")};
  if (grid.package_counts.empty()) {
    grid.package_counts = {grid.cluster_defaults.packages};
  }
  if (grid.arrival_rates_rps.empty()) {
    grid.arrival_rates_rps = {grid.serving_defaults.arrival_rps};
  }
  if (grid.arrival_sources.empty()) {
    grid.arrival_sources = {grid.user_counts.empty()
                                ? grid.serving_defaults.source
                                : serve::ArrivalSource::kClosedLoop};
  }

  engine::SweepOptions options;
  options.threads = threads;
  if (!quiet) {
    options.progress = [](std::size_t done, std::size_t total) {
      std::fprintf(stderr, "\r%zu/%zu cluster scenarios", done, total);
      if (done == total) {
        std::fputc('\n', stderr);
      }
    };
  }

  engine::SweepRunner runner(core::default_system_config(), options);
  if (!quiet) {
    std::fprintf(stderr, "Running on %zu worker threads\n",
                 runner.threads());
  }
  engine::ResultStore store;
  try {
    store.add_all(runner.run(grid));
  } catch (const std::exception& e) {
    return fail(std::string("cluster sweep failed: ") + e.what());
  }
  if (store.empty()) {
    std::printf("No feasible cluster scenarios — nothing to report.\n");
    return 1;
  }

  util::TextTable table({"Pkgs", "Balancer", "Rep", "Load", "Thpt (r/s)",
                         "Gput (r/s)", "Shed", "p99 (us)", "Xfers",
                         "Xfer E (mJ)", "E/req (mJ)"});
  for (const auto& r : store.results()) {
    const auto& m = *r.serving;
    const auto& c = *r.cluster;
    const auto& cs = *r.spec.cluster;
    const auto& s = *r.spec.serving;
    const std::string load =
        s.source == serve::ArrivalSource::kClosedLoop
            ? std::to_string(s.users) + "u"
            : util::format_fixed(s.arrival_rps, 0);
    table.add_row({std::to_string(cs.packages),
                   cluster::to_string(cs.balancer),
                   cs.replication_mix.empty()
                       ? std::to_string(cs.replication)
                       : cs.replication_mix,
                   load, util::format_fixed(m.throughput_rps, 0),
                   util::format_fixed(m.goodput_rps, 0),
                   std::to_string(m.shed), format_us(m.p99_s),
                   std::to_string(c.transfers),
                   util::format_fixed(c.transfer_energy_j * 1e3, 3),
                   util::format_fixed(m.energy_per_request_j * 1e3, 3)});
  }
  std::printf("Rack serving %s on %s, %zu scenarios (%zu threads)\n\n",
              grid.tenant_mixes.front().c_str(), accel::to_string(arch),
              store.size(), runner.threads());
  std::fputs(table.render().c_str(), stdout);

  if (!store.write_csv(out_path)) {
    return fail("cannot write " + out_path);
  }
  std::printf("\nCluster grid written to %s\n", out_path.c_str());
  return 0;
}
