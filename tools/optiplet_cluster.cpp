/// \file optiplet_cluster.cpp
/// Command-line front end of the rack-scale cluster simulator: declare
/// the tenant mix and the rack shape (package count, balancer policy,
/// replication), evaluate the cluster grid on a worker pool, and dump
/// the rack throughput/tail-latency/transfer columns as CSV.
///
/// Examples:
///   optiplet_cluster --tenants LeNet5 --packages 1,2,4 --rates 2000
///   optiplet_cluster --tenants ResNet50,LeNet5 --packages 2 \
///       --balancers rr,least --replication-mix 1+2
///   optiplet_cluster --tenants LeNet5 --packages 4 --replication 4 \
///       --balancers locality --rates 4000
///   optiplet_cluster --tenants LeNet5 --packages 2 \
///       --fidelity sampled:windows=4,seed=7
///   optiplet_cluster --trace arrivals.csv --tenants LeNet5 --packages 2

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "cli_support.hpp"
#include "cluster/cluster_simulator.hpp"
#include "dnn/zoo.hpp"
#include "engine/result_store.hpp"
#include "engine/scenario.hpp"
#include "engine/sweep_runner.hpp"
#include "obs/recorder.hpp"
#include "util/table.hpp"

namespace {

using namespace optiplet;
using cli::join;

std::string format_us(double seconds) {
  return util::format_fixed(seconds * 1e6, 1);
}

}  // namespace

int main(int argc, char** argv) {
  engine::ScenarioGrid grid;
  grid.serving_defaults.requests = 2000;
  grid.cluster_defaults.packages = 4;
  std::vector<std::string> tenants = {"LeNet5"};
  accel::Architecture arch = accel::Architecture::kSiph2p5D;
  std::size_t threads = 0;
  std::string out_path = "cluster.csv";
  std::string trace_out;
  std::string metrics_out;
  double snapshot_period_s = 0.0;
  cli::Logger log;

  cli::OptionSet options_set(
      "optiplet_cluster",
      R"(optiplet_cluster — multi-package rack serving simulator

Runs one shared arrival stream against a rack of N interposer packages
(each a full Table-1 chiplet pool wrapping its own serving simulator)
joined by board-level photonic links. A front-end load balancer picks
the serving replica per request; off-ingress requests pay the photonic
link-budget transfer cost. Reports the merged rack throughput, goodput,
tail latency, shed counts, transfer charges, and energy per request.)");
  options_set
      .add("--tenants", "NAMES",
           "comma list of co-located registry models\n"
           "(default LeNet5; see --list-models)",
           cli::store_model_list(tenants))
      .add("--rates", "LIST",
           "comma list of aggregate offered loads [requests/s]\n"
           "(default 200; split evenly over the tenants;\n"
           "open-loop only)",
           cli::append_positive_doubles(grid.arrival_rates_rps,
                                        "arrival rate"))
      .add("--packages", "LIST",
           "comma list of rack package counts (default 4)",
           cli::append_counts(grid.package_counts, "package count"))
      .add("--balancers", "LIST",
           "comma list of rr|least|locality (default locality)",
           cli::append_choices(grid.balancer_policies,
                               cluster::balancer_policy_from_string,
                               "balancer policy", "rr, least, locality"))
      .add("--replication", "LIST",
           "comma list of replicas per tenant, each clamped to\n"
           "the package count (default 1)",
           cli::append_counts(grid.replication_factors,
                              "replication factor"))
      .add("--replication-mix", "M",
           "'+'-joined per-tenant replication factors aligned\n"
           "with --tenants (e.g. 1+2); overrides --replication",
           cli::store_string(grid.cluster_defaults.replication_mix))
      .add("--link-length", "M",
           "board-level link length between packages [m]\n"
           "(default 0.25)",
           cli::store_positive_double(grid.cluster_defaults.link_length_m,
                                      "link length"))
      .add("--link-wavelengths", "N",
           "WDM channels per inter-package link (default 16)",
           cli::store_count(grid.cluster_defaults.link_wavelengths,
                            "link wavelength count"))
      .add("--policies", "LIST",
           "comma list of none|size|deadline|cont (default none;\n"
           "cont = continuous batching, transformer tenants\n"
           "only)",
           cli::append_choices(grid.batch_policies,
                               serve::batch_policy_from_string,
                               "batch policy", serve::batch_policy_choices()))
      .add("--admission", "LIST", "comma list of all|shed (default all)",
           cli::append_choices(grid.admission_policies,
                               serve::admission_policy_from_string,
                               "admission policy",
                               serve::admission_policy_choices()))
      .add("--sources", "LIST",
           "comma list of open|closed arrival sources\n"
           "(default open)",
           cli::append_choices(grid.arrival_sources,
                               serve::arrival_source_from_string,
                               "arrival source",
                               serve::arrival_source_choices()))
      .add("--prefill-tokens", "LIST",
           "comma list of mean prompt lengths [tokens]; any\n"
           "positive value switches transformer tenants to\n"
           "variable-length prefill/decode pricing (default 0 =\n"
           "fixed-shape requests)",
           cli::append_counts(grid.prefill_token_counts, "prefill tokens"))
      .add("--decode-tokens", "LIST",
           "comma list of mean generated lengths [tokens]; 0 =\n"
           "pure prefill (default 0; requires --prefill-tokens)",
           cli::append_counts_or_zero(grid.decode_token_counts,
                                      "decode tokens"))
      .add("--token-spread", "X",
           "relative half-width of the per-request uniform\n"
           "token-length draw, in [0,1) (default 0)",
           cli::store_nonnegative_double(grid.serving_defaults.token_spread,
                                         "token spread"))
      .add("--kv-cache-mb", "MB",
           "per-tenant KV-cache activation budget [MiB]; caps\n"
           "concurrent decode slots per package (default 256)",
           cli::store_positive_double(grid.serving_defaults.kv_cache_mb,
                                      "KV-cache budget"))
      .add("--users", "LIST",
           "comma list of closed-loop users per tenant\n"
           "(default 16; implies --sources closed when\n"
           "--sources is not given)",
           cli::append_counts(grid.user_counts, "user count"))
      .add("--elastics", "LIST",
           "comma list of elastic-operation policies as\n"
           "'/'-joined k=v codec strings; each package runs the\n"
           "policy on its own pool, and a fault=t:c:d:p entry\n"
           "is delivered only to package p (p=-1 hits all; see\n"
           "docs/elastic-operation.md; default static)",
           [&grid](const std::string& value) -> std::optional<std::string> {
             for (const std::string& part : cli::split(value, ',')) {
               if (!serve::elastic_from_string(part)) {
                 return "unparseable elastic policy: " + part;
               }
               grid.elastic_policies.push_back(part);
             }
             return std::nullopt;
           })
      .add("--max-batch", "K",
           "batch bound for size/deadline/cont policies (default 8)",
           cli::store_count(grid.serving_defaults.max_batch, "max batch"))
      .add("--max-wait", "S",
           "deadline policy: max queue wait [s] (default 1e-3)",
           cli::store_nonnegative_double(grid.serving_defaults.max_wait_s,
                                         "max wait"))
      .add("--requests", "N", "total arrivals across tenants (default 2000)",
           cli::store_count(grid.serving_defaults.requests, "request count"))
      .add("--seed", "S", "arrival-process seed (default 42)",
           cli::store_count_or_zero(grid.serving_defaults.seed, "seed"))
      .add("--sla", "S",
           "latency SLA [s]; 0 derives 10x the batch-1 service\n"
           "time per tenant (default 0)",
           cli::store_nonnegative_double(grid.serving_defaults.sla_s, "SLA"))
      .add("--trace", "FILE",
           "replay a CSV arrival trace (arrival_s[,tenant])\n"
           "instead of Poisson arrivals (see optiplet_tracegen)",
           cli::store_string(grid.serving_defaults.trace_path))
      .add("--arch", "NAME", "mono|elec|siph (default siph)",
           cli::store_choice(arch, engine::architecture_from_string,
                             "architecture", "mono, elec, siph"))
      .add("--fidelity", "LIST", cli::fidelity_help(),
           cli::append_fidelities(grid.fidelities))
      .add("--threads", "N",
           "worker threads; must be a positive integer\n"
           "(default: hardware concurrency)",
           cli::store_threads(threads))
      .add("--out", "FILE", "output CSV path (default cluster.csv)",
           cli::store_string(out_path))
      .add("--trace-out", "FILE",
           "also run the first scenario with request-lifecycle\n"
           "tracing and write a Chrome trace-event / Perfetto\n"
           "JSON; packages map to trace processes (see\n"
           "docs/observability.md)",
           cli::store_string(trace_out))
      .add("--metrics-out", "FILE",
           "also run the first scenario with metric snapshots\n"
           "and write the long-format time series CSV\n"
           "(t_s,series,value; per-package series prefixed p<i>.)",
           cli::store_string(metrics_out))
      .add("--snapshot-period", "S",
           "sim-time between metric snapshots [s] (default:\n"
           "~64 snapshots across the arrival span)",
           cli::store_positive_double(snapshot_period_s,
                                      "snapshot period"));
  cli::add_log_flags(options_set, log)
      .add_action("--list-models",
                  "print the model registry (name, family, params) and exit",
                  cli::list_models_action())
      .set_epilog("Value flags also accept the --flag=value spelling "
                  "(e.g. --packages=1,4).");
  if (const auto exit_code = options_set.parse(argc, argv)) {
    return *exit_code;
  }

  grid.architectures = {arch};
  grid.tenant_mixes = {join(tenants, "+")};
  if (grid.package_counts.empty()) {
    grid.package_counts = {grid.cluster_defaults.packages};
  }
  if (grid.arrival_rates_rps.empty()) {
    grid.arrival_rates_rps = {grid.serving_defaults.arrival_rps};
  }
  if (grid.arrival_sources.empty()) {
    grid.arrival_sources = {grid.user_counts.empty()
                                ? grid.serving_defaults.source
                                : serve::ArrivalSource::kClosedLoop};
  }

  engine::SweepOptions options;
  options.threads = threads;
  if (log.debug_enabled()) {
    // Per-scenario lines replace the \r meter (they would interleave).
    options.scenario_progress =
        [&log](const engine::ScenarioProgress& p) {
          if (p.from_cache) {
            log.debug("[%zu/%zu] %s  (cache)\n", p.done, p.total,
                      p.key.c_str());
          } else {
            log.debug("[%zu/%zu] %s  %.3f s\n", p.done, p.total,
                      p.key.c_str(), p.wall_s);
          }
        };
  } else if (log.info_enabled()) {
    options.progress = [](std::size_t done, std::size_t total) {
      std::fprintf(stderr, "\r%zu/%zu cluster scenarios", done, total);
      if (done == total) {
        std::fputc('\n', stderr);
      }
    };
  }

  engine::SweepRunner runner(core::default_system_config(), options);
  log.info("Running on %zu worker threads\n", runner.threads());
  engine::ResultStore store;
  try {
    store.add_all(runner.run(grid));
  } catch (const std::exception& e) {
    return options_set.fail(std::string("cluster sweep failed: ") +
                            e.what());
  }
  if (store.empty()) {
    log.result("No feasible cluster scenarios — nothing to report.\n");
    return 1;
  }

  util::TextTable table({"Pkgs", "Balancer", "Rep", "Load", "Thpt (r/s)",
                         "Gput (r/s)", "Shed", "p99 (us)", "Xfers",
                         "Xfer E (mJ)", "E/req (mJ)"});
  for (const auto& r : store.results()) {
    const auto& m = *r.serving;
    const auto& c = *r.cluster;
    const auto& cs = *r.spec.cluster;
    const auto& s = *r.spec.serving;
    const std::string load =
        s.source == serve::ArrivalSource::kClosedLoop
            ? std::to_string(s.users) + "u"
            : util::format_fixed(s.arrival_rps, 0);
    table.add_row({std::to_string(cs.packages),
                   cluster::to_string(cs.balancer),
                   cs.replication_mix.empty()
                       ? std::to_string(cs.replication)
                       : cs.replication_mix,
                   load, util::format_fixed(m.throughput_rps, 0),
                   util::format_fixed(m.goodput_rps, 0),
                   std::to_string(m.shed), format_us(m.p99_s),
                   std::to_string(c.transfers),
                   util::format_fixed(c.transfer_energy_j * 1e3, 3),
                   util::format_fixed(m.energy_per_request_j * 1e3, 3)});
  }
  log.result("Rack serving %s on %s, %zu scenarios (%zu threads)\n\n",
             grid.tenant_mixes.front().c_str(), accel::to_string(arch),
             store.size(), runner.threads());
  log.result("%s", table.render().c_str());

  // Self-profiling footer (per-scenario columns land in the CSV).
  if (log.info_enabled()) {
    double eval_wall_s = 0.0;
    std::uint64_t sim_events = 0;
    const engine::ScenarioResult* slowest = nullptr;
    for (const auto& r : store.results()) {
      if (r.from_cache) {
        continue;
      }
      eval_wall_s += r.eval_wall_s;
      if (slowest == nullptr || r.eval_wall_s > slowest->eval_wall_s) {
        slowest = &r;
      }
      if (r.serving) {
        sim_events += r.serving->sim_events;
      }
    }
    log.info("\nProfile: %zu simulated + %zu memoized scenarios, %.2f s "
             "eval wall, %llu sim events\n",
             runner.cache_entries(), runner.cache_hits(), eval_wall_s,
             static_cast<unsigned long long>(sim_events));
    if (slowest != nullptr) {
      log.info("Slowest scenario: %s (%.2f s)\n",
               slowest->spec.key().c_str(), slowest->eval_wall_s);
    }
  }

  if (!store.write_csv(out_path)) {
    return options_set.fail("cannot write " + out_path);
  }
  log.result("\nCluster grid written to %s\n", out_path.c_str());

  // Observability exports re-run the FIRST scenario with a recorder on
  // the rack config; grid results and CSV above are untouched.
  if (!trace_out.empty() || !metrics_out.empty()) {
    const engine::ScenarioSpec& spec = store.results().front().spec;
    obs::RecorderOptions recorder_options;
    recorder_options.trace = !trace_out.empty();
    recorder_options.metrics = !metrics_out.empty();
    recorder_options.snapshot_period_s = snapshot_period_s;
    obs::Recorder recorder(recorder_options);
    core::SystemConfig cfg = core::default_system_config();
    spec.apply(cfg);
    cluster::ClusterConfig cluster_config{cfg,          spec.arch,
                                          *spec.serving, *spec.cluster,
                                          /*threads=*/1, &recorder};
    try {
      (void)cluster::simulate(cluster_config);
    } catch (const std::exception& e) {
      return options_set.fail(std::string("instrumented run failed: ") +
                              e.what());
    }
    if (!trace_out.empty()) {
      if (!recorder.trace().write_json(trace_out)) {
        return options_set.fail("cannot write " + trace_out);
      }
      log.result("Trace of %s (%zu spans) written to %s\n",
                 spec.key().c_str(), recorder.trace().size(),
                 trace_out.c_str());
    }
    if (!metrics_out.empty()) {
      if (!recorder.metrics().write_csv(metrics_out)) {
        return options_set.fail("cannot write " + metrics_out);
      }
      log.result("Metric snapshots of %s (%zu series) written to %s\n",
                 spec.key().c_str(), recorder.metrics().series_count(),
                 metrics_out.c_str());
    }
  }
  return 0;
}
