#!/usr/bin/env python3
"""Bench-regression tripwire for CI's bench-smoke job.

Parses the CSVs the characterization benches emit and fails on sanity
violations instead of only uploading artifacts:

serving_load_sweep.csv
  * schema/finiteness, utilization in [0, 1], SLA-violation rate in [0, 1]
  * shed fraction in [0, 1]; goodput never exceeds throughput
  * p99 latency is non-decreasing with offered load for the open-loop,
    admit-all, no-batching series within each (resipi_mode, pipeline,
    tenant_mix) group (an M/G/1-style queue cannot get faster under more
    load; batching policies are exempt because a fuller batch *can*
    shorten the fill wait, shedding is exempt because it bounds the tail
    by design, and closed-loop rows are exempt because the client pool
    self-throttles)
  * closed-loop rows: measured throughput cannot exceed the client pool's
    upper bound users/think_s (users = total concurrent users across the
    mix) beyond sampling slack — the bound holds in expectation, so a
    finite run may overshoot by ~1/sqrt(requests-per-user) — and only
    shed requests may be lost (completed + shed == offered is checked
    in-simulator; here: goodput <= throughput <= bound * slack)
  * at equal load, layer-granular (pipelined) execution must achieve at
    least the batch-granular pool utilization, and no worse a p99

noc_photonic_traffic.csv
  * schema/finiteness, delivered fraction in (0, 1]
  * mean read latency is non-decreasing with offered load per mode
  * delivered fraction is non-decreasing with offered load per mode

sim_speed_sweep.csv
  * schema/finiteness; exactly one cycle-accurate and at least one
    sampled fidelity group, each covering the same (policy, load) points
  * the speed/accuracy contract of Fidelity::kSampled: every sampled
    group simulates >= 10x the cycle-accurate requests per wall-second
    (the whole point of sampling), while its mean and p50 latencies stay
    within the calibration band of the cycle-accurate row at the same
    (policy, load) point — fast alone is easy, the pair is the feature
  * analytical must be at least as fast as sampled (sampling adds cycle
    windows on top of the closed-form model, it cannot be cheaper)

transformer_serving_sweep.csv
  * schema/finiteness, utilization in [0, 1], goodput never exceeds
    throughput, TTFT p99 never exceeds completion p99, and peak KV-cache
    occupancy never exceeds the per-tenant budget (a hard reservation)
  * context section: decode throughput (tokens/s) is non-increasing in
    the prompt length — every decode step re-streams the whole KV cache
  * policy section: at the saturating decode-heavy operating point,
    continuous (iteration-level) batching beats fixed-size batching on
    goodput AND p99 AND TTFT p99 — retiring sequences at token
    boundaries instead of padding to the longest generation is the
    feature under test

cluster_scale_sweep.csv
  * schema/finiteness, per-package utilization spread in [0, 1] with
    util_min <= util_max, shed fraction in [0, 1], goodput never exceeds
    throughput, transfer charges non-negative (and consistent: zero
    transfers means zero transfer latency/energy)
  * rack throughput is non-decreasing in package count at fixed
    (balancer, replication, offered load) — adding packages must not
    cost aggregate throughput
  * at equal (packages, replication, offered load), the locality-aware
    balancer achieves at least the round-robin goodput (it only deviates
    from the fallback policy to avoid photonic transfer hops)

elastic_day_sweep.csv
  * schema/finiteness, availability and fractions in [0, 1], energy per
    request positive wherever anything completed
  * all four policy rows present (static, elastic, elastic_gated,
    faulted) over the same offered stream
  * the headline elasticity contract: elastic + gating spends measurably
    less energy per request than the static partition at off-peak (the
    idle burn it removes is largest exactly when the diurnal trough
    leaves chiplets dark), and its total idle ledger energy never
    exceeds the ungated run's
  * gating consistency: zero gate events means zero gated seconds, and
    only gated policies may report them
  * fault tolerance: the faulted day actually injected its fault and
    kept availability above zero — degraded-but-serving, never dark —
    while its goodput does not beat the healthy static day

Usage: check_bench_csv.py FILE [FILE ...]
Files are dispatched on their basename. Exits non-zero on any violation.
"""

import csv
import math
import os
import sys

# Multiplicative slack for "non-decreasing" trends: finite-run noise may
# wiggle a point, a regression moves it.
TREND_TOLERANCE = 0.98
# Pipelined may not lose to blocked by more than float noise.
PAIR_TOLERANCE = 1.0 - 1e-6
# The closed-loop bound users/think_s holds in expectation, not per
# sample path: a finite run's realized think-time sum wobbles by
# ~1/sqrt(requests-per-user), so measured throughput can legitimately
# sit a few percent above the bound. 10% slack separates sampling noise
# from a real self-throttling regression (which overshoots by the
# user-pool factor, not percents).
CLOSED_BOUND_SLACK = 1.10
# The sampled-fidelity acceptance gate: at least this many cycle-accurate
# requests per wall-second per sampled one. The bench's operating point
# (DenseNet121, windows=8) measures ~15x on a single core; 10x is the
# contract, the headroom absorbs machine-to-machine variance.
SIM_SPEEDUP_FLOOR = 10.0
# Sampled latencies must sit within this relative band of the
# cycle-accurate row at the same (policy, load) point — the same order
# as the batch-calibration tolerance on service times. The bench pins
# its load points below the capacity knee precisely so queueing does not
# amplify service-time error past the band (waits scale like
# 1/(1 - rho)); measured error at the operating point is ~4-6%.
SIM_LATENCY_BAND = 0.10
# The observability overhead contract (docs/observability.md): the
# attached-recorder rate of the sim_speed obs pair must stay within 3%
# of the detached rate. Both sides are best-of-N on the same scenario,
# so what's left is genuinely recorder cost, not scheduler noise.
OBS_OVERHEAD_FLOOR = 0.97

failures = []


def fail(path, message):
    failures.append(f"{os.path.basename(path)}: {message}")


def read_rows(path, required):
    with open(path, newline="") as handle:
        rows = list(csv.DictReader(handle))
    if not rows:
        fail(path, "no data rows")
        return []
    missing = sorted(set(required) - set(rows[0].keys()))
    if missing:
        fail(path, f"missing columns: {', '.join(missing)}")
        return []
    return rows


def numeric(path, row, column):
    try:
        value = float(row[column])
    except (KeyError, TypeError, ValueError):
        fail(path, f"non-numeric {column}: {row.get(column)!r}")
        return None
    if not math.isfinite(value):
        fail(path, f"non-finite {column}: {value}")
        return None
    return value


def check_trend(path, series, key, what):
    """Values must be non-decreasing along the series within tolerance."""
    ordered = sorted(series, key=lambda r: r["_load"])
    for prev, cur in zip(ordered, ordered[1:]):
        if cur[key] < prev[key] * TREND_TOLERANCE:
            fail(
                path,
                f"{what}: {key} fell from {prev[key]:g} to {cur[key]:g} "
                f"as load rose {prev['_load']:g} -> {cur['_load']:g}",
            )


def check_serving(path):
    numeric_cols = [
        "offered_rps",
        "users",
        "think_s",
        "throughput_rps",
        "goodput_rps",
        "shed",
        "shed_fraction",
        "mean_s",
        "p50_s",
        "p95_s",
        "p99_s",
        "sla_violation_rate",
        "mean_batch",
        "utilization",
        "energy_per_request_j",
    ]
    string_cols = ["resipi_mode", "policy", "pipeline", "tenant_mix",
                   "source", "admission"]
    rows = read_rows(path, string_cols + numeric_cols)
    parsed = []
    for row in rows:
        values = {c: numeric(path, row, c) for c in numeric_cols}
        if any(v is None for v in values.values()):
            return
        values["_load"] = values["offered_rps"]
        for col in string_cols:
            values[col] = row[col]
        parsed.append(values)
        if not 0.0 <= values["utilization"] <= 1.0 + 1e-6:
            fail(path, f"utilization out of [0, 1]: {values['utilization']:g}")
        if not 0.0 <= values["sla_violation_rate"] <= 1.0:
            fail(
                path,
                f"SLA violation rate out of [0, 1]: "
                f"{values['sla_violation_rate']:g}",
            )
        if not 0.0 <= values["shed_fraction"] <= 1.0:
            fail(
                path,
                f"shed fraction out of [0, 1]: {values['shed_fraction']:g}",
            )
        if values["goodput_rps"] > values["throughput_rps"] / PAIR_TOLERANCE:
            fail(
                path,
                f"goodput {values['goodput_rps']:g} exceeds throughput "
                f"{values['throughput_rps']:g}",
            )
        if values["source"] == "closed":
            if values["think_s"] <= 0 or values["users"] < 1:
                fail(
                    path,
                    f"closed-loop row without users/think_s: "
                    f"users={values['users']:g} think={values['think_s']:g}",
                )
            else:
                bound = values["users"] / values["think_s"]
                if values["throughput_rps"] > bound * CLOSED_BOUND_SLACK:
                    fail(
                        path,
                        f"closed-loop throughput {values['throughput_rps']:g}"
                        f" exceeds the client-pool bound {bound:g} "
                        f"(users/think_s)",
                    )

    # p99 monotone in offered load for the open-loop queueing-only,
    # admit-all series (closed loops self-throttle and shedding bounds
    # the tail, so neither is required to be monotone).
    series = {}
    for row in parsed:
        if (
            row["policy"] != "none"
            or row["source"] != "open"
            or row["admission"] != "all"
        ):
            continue
        key = (row["resipi_mode"], row["pipeline"], row["tenant_mix"])
        series.setdefault(key, []).append(row)
    if not series:
        fail(path, "no open/admit-all policy=none rows to check p99 on")
    for key, group in sorted(series.items()):
        check_trend(path, group, "p99_s", f"series {'/'.join(key)}")

    # Pipelined must not lose to blocked at equal load.
    blocked = {}
    pipelined = {}
    for row in parsed:
        key = (
            row["resipi_mode"],
            row["policy"],
            row["tenant_mix"],
            row["source"],
            row["admission"],
            row["offered_rps"],
        )
        {"batch": blocked, "layer": pipelined}.setdefault(
            row["pipeline"], {}
        )[key] = row
    pairs = sorted(set(blocked) & set(pipelined))
    if pipelined and not pairs:
        fail(path, "layer-granular rows have no batch-granular twin")
    for key in pairs:
        b, p = blocked[key], pipelined[key]
        label = "/".join(str(k) for k in key)
        if p["utilization"] < b["utilization"] * PAIR_TOLERANCE:
            fail(
                path,
                f"pipelined utilization {p['utilization']:g} below "
                f"blocked {b['utilization']:g} at {label}",
            )
        if p["p99_s"] > b["p99_s"] / TREND_TOLERANCE:
            fail(
                path,
                f"pipelined p99 {p['p99_s']:g} above blocked "
                f"{b['p99_s']:g} at {label}",
            )


def check_noc(path):
    numeric_cols = [
        "offered_fraction",
        "mean_read_cycles",
        "mean_write_cycles",
        "delivered_fraction",
    ]
    rows = read_rows(path, ["mode"] + numeric_cols)
    series = {}
    for row in rows:
        values = {c: numeric(path, row, c) for c in numeric_cols}
        if any(v is None for v in values.values()):
            return
        values["_load"] = values["offered_fraction"]
        if values["mean_read_cycles"] <= 0:
            fail(path, f"non-positive read latency: {values['mean_read_cycles']:g}")
        if not 0.0 < values["delivered_fraction"] <= 1.0 + 1e-6:
            fail(
                path,
                f"delivered fraction out of (0, 1]: "
                f"{values['delivered_fraction']:g}",
            )
        series.setdefault(row["mode"], []).append(values)
    for mode, group in sorted(series.items()):
        if len(group) < 2:
            fail(path, f"mode {mode}: fewer than 2 load points")
            continue
        check_trend(path, group, "mean_read_cycles", f"mode {mode}")
        check_trend(path, group, "delivered_fraction", f"mode {mode}")


def check_cluster(path):
    numeric_cols = [
        "packages",
        "replication",
        "offered_rps",
        "throughput_rps",
        "goodput_rps",
        "shed",
        "shed_fraction",
        "p50_s",
        "p99_s",
        "energy_per_request_j",
        "transfers",
        "transfer_latency_s",
        "transfer_energy_j",
        "util_min",
        "util_max",
    ]
    parsed = []
    for row in read_rows(path, ["balancer"] + numeric_cols):
        values = {c: numeric(path, row, c) for c in numeric_cols}
        if any(v is None for v in values.values()):
            return
        values["balancer"] = row["balancer"]
        values["_load"] = values["packages"]
        parsed.append(values)
        if not 0.0 <= values["util_min"] <= values["util_max"] <= 1.0 + 1e-6:
            fail(
                path,
                f"utilization spread out of [0, 1]: "
                f"[{values['util_min']:g}, {values['util_max']:g}]",
            )
        if not 0.0 <= values["shed_fraction"] <= 1.0:
            fail(
                path,
                f"shed fraction out of [0, 1]: {values['shed_fraction']:g}",
            )
        if values["goodput_rps"] > values["throughput_rps"] / PAIR_TOLERANCE:
            fail(
                path,
                f"goodput {values['goodput_rps']:g} exceeds throughput "
                f"{values['throughput_rps']:g}",
            )
        if values["transfer_latency_s"] < 0 or values["transfer_energy_j"] < 0:
            fail(
                path,
                f"negative transfer charge: latency "
                f"{values['transfer_latency_s']:g} energy "
                f"{values['transfer_energy_j']:g}",
            )
        if values["transfers"] == 0 and (
            values["transfer_latency_s"] > 0 or values["transfer_energy_j"] > 0
        ):
            fail(path, "transfer charges without any recorded transfers")

    # Rack throughput monotone in package count at fixed load: the trend
    # key is the package count, so adding packages must not cost
    # aggregate throughput within each (balancer, replication, load)
    # series.
    series = {}
    for row in parsed:
        key = (row["balancer"], row["replication"], row["offered_rps"])
        series.setdefault(key, []).append(row)
    for key, group in sorted(series.items()):
        if len(group) < 2:
            fail(path, f"series {key}: fewer than 2 package counts")
            continue
        label = "/".join(str(k) for k in key)
        check_trend(path, group, "throughput_rps", f"series {label}")

    # Locality-aware must not lose goodput to round-robin at equal load.
    rr = {}
    locality = {}
    for row in parsed:
        key = (row["packages"], row["replication"], row["offered_rps"])
        {"rr": rr, "locality": locality}.setdefault(row["balancer"], {})[
            key
        ] = row
    pairs = sorted(set(rr) & set(locality))
    if locality and not pairs:
        fail(path, "locality-aware rows have no round-robin twin")
    for key in pairs:
        base, better = rr[key], locality[key]
        if better["goodput_rps"] < base["goodput_rps"] * TREND_TOLERANCE:
            label = "/".join(str(k) for k in key)
            fail(
                path,
                f"locality-aware goodput {better['goodput_rps']:g} below "
                f"round-robin {base['goodput_rps']:g} at {label}",
            )


def check_obs_pair(path, pair):
    """The attached-recorder rate must stay within 3% of detached."""
    if not pair:
        return  # pre-observability CSVs have no pair rows
    missing = sorted({"pair-off", "pair-on"} - set(pair))
    if missing:
        fail(path, f"obs pair incomplete: missing {', '.join(missing)}")
        return
    off_rate = pair["pair-off"][0]["requests_per_wall_s"]
    on_rate = pair["pair-on"][0]["requests_per_wall_s"]
    if on_rate < off_rate * OBS_OVERHEAD_FLOOR:
        fail(
            path,
            f"attached-recorder rate {on_rate:g} requests/wall-s is "
            f"{1.0 - on_rate / off_rate:.1%} below the detached rate "
            f"{off_rate:g}; the observability overhead budget is "
            f"{1.0 - OBS_OVERHEAD_FLOOR:.0%}",
        )


def check_sim_speed(path):
    numeric_cols = [
        "offered_rps",
        "offered_util",
        "requests",
        "wall_s",
        "requests_per_wall_s",
        "throughput_rps",
        "mean_s",
        "p50_s",
        "p95_s",
        "p99_s",
        "mean_batch",
    ]
    groups = {}
    pair = {}
    for row in read_rows(path, ["fidelity", "policy"] + numeric_cols):
        values = {c: numeric(path, row, c) for c in numeric_cols}
        if any(v is None for v in values.values()):
            return
        values["policy"] = row["policy"]
        if values["wall_s"] <= 0 or values["requests_per_wall_s"] <= 0:
            fail(
                path,
                f"non-positive wall time/rate: wall={values['wall_s']:g} "
                f"rate={values['requests_per_wall_s']:g}",
            )
        # The observability overhead pair (obs=pair-off/pair-on) is a
        # direct-simulate measurement outside the fidelity grid; keep it
        # out of the fidelity grouping below. Rows without an obs column
        # predate the recorder and are null-recorder rows.
        obs = row.get("obs", "off") or "off"
        if obs.startswith("pair-"):
            pair.setdefault(obs, []).append(values)
        else:
            groups.setdefault(row["fidelity"], []).append(values)

    check_obs_pair(path, pair)

    def mode_of(fidelity):
        return fidelity.split(":", 1)[0]

    cycle = {f: g for f, g in groups.items() if mode_of(f) == "cycle"}
    sampled = {f: g for f, g in groups.items() if mode_of(f) == "sampled"}
    analytical = {f: g for f, g in groups.items()
                  if mode_of(f) == "analytical"}
    if len(cycle) != 1:
        fail(path, f"expected exactly one cycle group, got {sorted(cycle)}")
        return
    if not sampled:
        fail(path, "no sampled fidelity group — the bench's entire point")
        return
    cycle_rows = next(iter(cycle.values()))
    cycle_rate = cycle_rows[0]["requests_per_wall_s"]
    cycle_points = {
        (r["policy"], r["offered_rps"]): r for r in cycle_rows
    }

    for fidelity, rows in sorted(sampled.items()):
        rate = rows[0]["requests_per_wall_s"]
        if rate < cycle_rate * SIM_SPEEDUP_FLOOR:
            fail(
                path,
                f"{fidelity}: {rate:g} requests/wall-s is only "
                f"{rate / cycle_rate:.1f}x cycle-accurate ({cycle_rate:g}); "
                f"the sampled contract is >= {SIM_SPEEDUP_FLOOR:g}x",
            )
        points = {(r["policy"], r["offered_rps"]): r for r in rows}
        if set(points) != set(cycle_points):
            fail(
                path,
                f"{fidelity}: load points differ from the cycle group's",
            )
            continue
        for key in sorted(points):
            ref, got = cycle_points[key], points[key]
            label = f"{key[0]}@{got['offered_util']:g}"
            for col in ("mean_s", "p50_s"):
                rel = abs(got[col] - ref[col]) / ref[col]
                if rel > SIM_LATENCY_BAND:
                    fail(
                        path,
                        f"{fidelity}: {col} at {label} is {rel:.1%} off "
                        f"cycle-accurate ({got[col]:g} vs {ref[col]:g}), "
                        f"band is {SIM_LATENCY_BAND:.0%}",
                    )

    for fidelity, rows in sorted(analytical.items()):
        rate = rows[0]["requests_per_wall_s"]
        slowest_sampled = min(
            g[0]["requests_per_wall_s"] for g in sampled.values()
        )
        if rate < slowest_sampled:
            fail(
                path,
                f"{fidelity}: {rate:g} requests/wall-s is slower than a "
                f"sampled group ({slowest_sampled:g}) — sampling adds cycle "
                f"windows on top of the closed-form model",
            )


def check_transformer(path):
    numeric_cols = [
        "prefill_tokens",
        "decode_tokens",
        "token_spread",
        "kv_cache_mb",
        "offered_rps",
        "throughput_rps",
        "goodput_rps",
        "shed",
        "p50_s",
        "p99_s",
        "ttft_p99_s",
        "decode_tps",
        "kv_peak_bytes",
        "kv_budget_bytes",
        "mean_batch",
        "utilization",
        "energy_per_request_j",
    ]
    rows = read_rows(path, ["section", "policy"] + numeric_cols)
    parsed = []
    for row in rows:
        values = {c: numeric(path, row, c) for c in numeric_cols}
        if any(v is None for v in values.values()):
            return
        values["section"] = row["section"]
        values["policy"] = row["policy"]
        parsed.append(values)
        if not 0.0 <= values["utilization"] <= 1.0 + 1e-6:
            fail(path, f"utilization out of [0, 1]: {values['utilization']:g}")
        if values["goodput_rps"] > values["throughput_rps"] * (1.0 + 1e-9):
            fail(
                path,
                f"goodput {values['goodput_rps']:g} exceeds throughput "
                f"{values['throughput_rps']:g}",
            )
        # The KV budget is a hard reservation cap: peak occupancy can
        # never exceed it, at any setting.
        if values["kv_peak_bytes"] > values["kv_budget_bytes"]:
            fail(
                path,
                f"KV peak {values['kv_peak_bytes']:g} B exceeds the "
                f"budget {values['kv_budget_bytes']:g} B",
            )
        # Every request's first token lands no later than its completion,
        # so the TTFT tail is pointwise dominated by the latency tail.
        if values["ttft_p99_s"] > values["p99_s"] * (1.0 + 1e-9):
            fail(
                path,
                f"TTFT p99 {values['ttft_p99_s']:g} exceeds completion "
                f"p99 {values['p99_s']:g}",
            )

    # Context sweep: every decode step re-streams the whole KV cache, so
    # decode throughput must fall (or hold) as the prompt grows.
    context = sorted(
        (r for r in parsed if r["section"] == "context"),
        key=lambda r: r["prefill_tokens"],
    )
    if len(context) < 2:
        fail(path, "context section has fewer than 2 prompt lengths")
    for prev, cur in zip(context, context[1:]):
        if cur["decode_tps"] > prev["decode_tps"] / TREND_TOLERANCE:
            fail(
                path,
                f"decode_tps rose from {prev['decode_tps']:g} to "
                f"{cur['decode_tps']:g} as the context grew "
                f"{prev['prefill_tokens']:g} -> {cur['prefill_tokens']:g} "
                f"tokens",
            )

    # Policy grid at saturating decode-heavy load: continuous batching
    # must beat fixed-size on goodput AND tail latency — retiring each
    # sequence at its own token boundary instead of padding the batch to
    # the longest generation is the feature under test.
    policies = {r["policy"]: r for r in parsed if r["section"] == "policy"}
    if not {"size", "cont"} <= set(policies):
        fail(path, "policy section is missing the size/cont pair")
    else:
        size, cont = policies["size"], policies["cont"]
        if cont["goodput_rps"] < size["goodput_rps"] * PAIR_TOLERANCE:
            fail(
                path,
                f"continuous goodput {cont['goodput_rps']:g} lost to "
                f"fixed-size {size['goodput_rps']:g} at the saturating "
                f"decode-heavy point",
            )
        if cont["p99_s"] > size["p99_s"] / PAIR_TOLERANCE:
            fail(
                path,
                f"continuous p99 {cont['p99_s']:g} lost to fixed-size "
                f"{size['p99_s']:g} at the saturating decode-heavy point",
            )
        if cont["ttft_p99_s"] > size["ttft_p99_s"] / PAIR_TOLERANCE:
            fail(
                path,
                f"continuous TTFT p99 {cont['ttft_p99_s']:g} lost to "
                f"fixed-size {size['ttft_p99_s']:g}",
            )


def check_elastic(path):
    numeric_cols = [
        "offered",
        "completed",
        "abandoned",
        "availability",
        "goodput_rps",
        "energy_per_request_j",
        "offpeak_epr_j",
        "peak_epr_j",
        "idle_energy_j",
        "gated_idle_s",
        "gate_events",
        "repartitions",
        "retries",
        "faults_injected",
        "carbon_g",
    ]
    rows = {}
    for row in read_rows(path, ["policy"] + numeric_cols):
        values = {c: numeric(path, row, c) for c in numeric_cols}
        if any(v is None for v in values.values()):
            return
        rows[row["policy"]] = values
        if not 0.0 <= values["availability"] <= 1.0 + 1e-9:
            fail(path, f"availability out of [0, 1]: {values['availability']:g}")
        if values["completed"] > 0 and values["energy_per_request_j"] <= 0:
            fail(
                path,
                f"non-positive energy per request with completions: "
                f"{values['energy_per_request_j']:g}",
            )
        if values["gate_events"] == 0 and values["gated_idle_s"] != 0:
            fail(
                path,
                f"{values['gated_idle_s']:g} s gated without a gate event",
            )
        if values["idle_energy_j"] < 0 or values["carbon_g"] < 0:
            fail(path, "negative idle energy or carbon")

    expected = {"static", "elastic", "elastic_gated", "faulted"}
    if set(rows) != expected:
        fail(
            path,
            f"policy rows {sorted(rows)} != expected {sorted(expected)}",
        )
        return
    static, gated, faulted = (
        rows["static"],
        rows["elastic_gated"],
        rows["faulted"],
    )
    if any(r["offered"] != static["offered"] for r in rows.values()):
        fail(path, "policies did not replay the same offered stream")

    # The headline contract: power-gating the diurnal trough must buy a
    # measurable off-peak energy-per-request win over the static
    # partition — 2% is far below the observed ~35% and far above float
    # noise, so a miss means the gating path stopped removing idle burn.
    if gated["offpeak_epr_j"] > static["offpeak_epr_j"] * 0.98:
        fail(
            path,
            f"gated off-peak energy/request {gated['offpeak_epr_j']:g} did "
            f"not beat static {static['offpeak_epr_j']:g} by 2%",
        )
    if gated["idle_energy_j"] > static["idle_energy_j"]:
        fail(
            path,
            f"gated idle ledger energy {gated['idle_energy_j']:g} exceeds "
            f"ungated {static['idle_energy_j']:g}",
        )
    if static["gate_events"] != 0 or rows["elastic"]["gate_events"] != 0:
        fail(path, "an ungated policy reported gate events")

    # Degraded but serving: the fault fired, the day kept completing
    # requests, and the broken pool cannot out-serve the healthy one.
    if faulted["faults_injected"] < 1:
        fail(path, "the faulted day injected no fault")
    if faulted["availability"] <= 0:
        fail(path, "the faulted day served nothing — availability 0")
    if faulted["goodput_rps"] > static["goodput_rps"] / PAIR_TOLERANCE:
        fail(
            path,
            f"faulted goodput {faulted['goodput_rps']:g} beats the healthy "
            f"static day {static['goodput_rps']:g}",
        )


CHECKERS = {
    "serving_load_sweep.csv": check_serving,
    "noc_photonic_traffic.csv": check_noc,
    "cluster_scale_sweep.csv": check_cluster,
    "sim_speed_sweep.csv": check_sim_speed,
    "transformer_serving_sweep.csv": check_transformer,
    "elastic_day_sweep.csv": check_elastic,
}


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    for path in argv[1:]:
        checker = CHECKERS.get(os.path.basename(path))
        if checker is None:
            fail(path, f"no checker registered (known: {', '.join(CHECKERS)})")
            continue
        if not os.path.exists(path):
            fail(path, "file not found")
            continue
        checker(path)
    if failures:
        print(f"check_bench_csv: {len(failures)} violation(s)")
        for failure in failures:
            print(f"  FAIL {failure}")
        return 1
    print(f"check_bench_csv: {len(argv) - 1} file(s) sane")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
