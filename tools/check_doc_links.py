#!/usr/bin/env python3
"""Relative-link checker for the repo's markdown docs.

Scans every markdown file passed on the command line for inline links and
images (`[text](target)`), skips absolute URLs (any scheme) and pure
in-page anchors (`#...`), strips anchor suffixes from the rest, resolves
each target relative to its file's directory, and fails when the target
does not exist. CI's docs job gates on it; a ctest (`doc_links`) runs the
same check locally.

Usage: check_doc_links.py FILE [FILE ...]
Exits non-zero on any broken link (or an unreadable input file).
"""

import os
import re
import sys

# Inline markdown links/images: [text](target "optional title").
# Nested brackets in the text (e.g. badges: [![alt](img)](url)) are
# handled by scanning for the '](' seam rather than matching the text.
LINK_TARGET = re.compile(r"\]\(\s*<?([^)<>\s]+)>?(?:\s+\"[^\"]*\")?\s*\)")
SCHEME = re.compile(r"^[a-zA-Z][a-zA-Z0-9+.-]*:")


def check_file(path):
    """Return a list of 'file: broken target' failure strings."""
    try:
        with open(path, encoding="utf-8") as handle:
            text = handle.read()
    except OSError as error:
        return [f"{path}: cannot read ({error.strerror})"]
    failures = []
    base = os.path.dirname(os.path.abspath(path))
    in_code_fence = False
    for line_number, line in enumerate(text.splitlines(), start=1):
        if line.lstrip().startswith("```"):
            in_code_fence = not in_code_fence
            continue
        if in_code_fence:
            continue
        for match in LINK_TARGET.finditer(line):
            target = match.group(1)
            if SCHEME.match(target) or target.startswith("#"):
                continue  # external URL or in-page anchor
            relative = target.split("#", 1)[0]
            if not relative:
                continue
            if not os.path.exists(os.path.join(base, relative)):
                failures.append(
                    f"{path}:{line_number}: broken relative link: {target}"
                )
    return failures


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    failures = []
    for path in argv[1:]:
        failures.extend(check_file(path))
    if failures:
        print(f"check_doc_links: {len(failures)} broken link(s)")
        for failure in failures:
            print(f"  FAIL {failure}")
        return 1
    print(f"check_doc_links: {len(argv) - 1} file(s) clean")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
