/// \file optiplet_serve.cpp
/// Command-line front end of the request-level serving simulator: declare
/// the tenant mix, offered-load points, and batching policies; evaluate
/// the (rates x policies x fidelities) serving grid on a worker pool; and
/// dump the tail-latency/throughput/energy columns as CSV.
///
/// Examples:
///   optiplet_serve --tenants LeNet5 --rates 500,1000,2000
///   optiplet_serve --tenants MobileNetV2,ResNet50 --rates 400 \
///       --policies none,deadline --max-batch 8 --max-wait 2e-3
///   optiplet_serve --tenants LeNet5 --rates 1000 --fidelity cycle
///   optiplet_serve --tenants DenseNet121 --rates 300 \
///       --fidelity sampled:windows=8,seed=1
///   optiplet_serve --tenants ResNet50,DenseNet121 --rates 300 \
///       --pipelines batch,layer
///   optiplet_serve --tenants LeNet5 --users 8,32,128 --think 5e-3
///   optiplet_serve --tenants ResNet50,DenseNet121 --priorities 0,1 \
///       --admission all,shed --rates 600
///   optiplet_serve --trace arrivals.csv --tenants LeNet5 --policies size
///   optiplet_serve --tenants TinyGPT --rates 50,100 --policies cont \
///       --prefill-tokens 256 --decode-tokens 64 --kv-cache-mb 256
///   optiplet_serve --tenants LeNet5 --rates 500 --admission shed \
///       --elastics static,shift=0.2/gate=1e-3:1e-4/bucket=3600 \
///       --curve-out day_curve.csv

#include <cstdint>
#include <cstdio>
#include <optional>
#include <string>
#include <vector>

#include "cli_support.hpp"
#include "dnn/zoo.hpp"
#include "engine/result_store.hpp"
#include "engine/scenario.hpp"
#include "engine/sweep_runner.hpp"
#include "obs/recorder.hpp"
#include "serve/serving_simulator.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

namespace {

using namespace optiplet;
using cli::join;
using cli::split;

std::string format_us(double seconds) {
  return util::format_fixed(seconds * 1e6, 1);
}

}  // namespace

int main(int argc, char** argv) {
  engine::ScenarioGrid grid;
  grid.serving_defaults.requests = 2000;
  std::vector<std::string> tenants = {"LeNet5"};
  accel::Architecture arch = accel::Architecture::kSiph2p5D;
  std::size_t threads = 0;
  std::string out_path = "serve.csv";
  std::string trace_out;
  std::string metrics_out;
  std::string curve_out;
  double snapshot_period_s = 0.0;
  cli::Logger log;

  cli::OptionSet options_set(
      "optiplet_serve",
      R"(optiplet_serve — request-level inference serving simulator

Serves a request stream against the 2.5D platform: open-loop (seeded
Poisson or replayed-trace) or closed-loop (client-pool) arrivals per
tenant, an admission/batching policy with optional SLA-aware shedding,
chiplet-pool partitioning between co-located tenants, and the
full-system simulator as the (memoized) batch service-time oracle.
Reports throughput, goodput, p50/p95/p99 latency, SLA violations, shed
counts, utilization, and energy per request.)");
  options_set
      .add("--tenants", "NAMES",
           "comma list of co-located registry models\n"
           "(default LeNet5; see --list-models)",
           cli::store_model_list(tenants))
      .add("--rates", "LIST",
           "comma list of aggregate offered loads [requests/s]\n"
           "(default 200; split evenly over the tenants;\n"
           "open-loop only)",
           cli::append_positive_doubles(grid.arrival_rates_rps,
                                        "arrival rate"))
      .add("--policies", "LIST",
           "comma list of none|size|deadline|cont (default none;\n"
           "cont = continuous batching at token boundaries,\n"
           "transformer tenants only)",
           cli::append_choices(grid.batch_policies,
                               serve::batch_policy_from_string,
                               "batch policy", serve::batch_policy_choices()))
      .add("--pipelines", "LIST",
           "comma list of batch|layer execution granularities\n"
           "(default batch; layer = SET-style inter-layer\n"
           "pipelining with scarce-group handoff)",
           cli::append_choices(grid.pipeline_modes,
                               serve::pipeline_mode_from_string,
                               "pipeline mode", serve::pipeline_mode_choices()))
      .add("--sources", "LIST",
           "comma list of open|closed arrival sources\n"
           "(default open; closed = N users per tenant issuing\n"
           "one request each, thinking between responses)",
           cli::append_choices(grid.arrival_sources,
                               serve::arrival_source_from_string,
                               "arrival source",
                               serve::arrival_source_choices()))
      .add("--users", "LIST",
           "comma list of closed-loop users per tenant\n"
           "(default 16; implies --sources closed when\n"
           "--sources is not given)",
           cli::append_counts(grid.user_counts, "user count"))
      .add("--think", "S",
           "closed-loop mean exponential think time [s]\n"
           "(default 1e-2)",
           cli::store_nonnegative_double(grid.serving_defaults.think_s,
                                         "think time"))
      .add("--admission", "LIST",
           "comma list of all|shed (default all; shed rejects\n"
           "arrivals whose predicted completion misses the SLA)",
           cli::append_choices(grid.admission_policies,
                               serve::admission_policy_from_string,
                               "admission policy",
                               serve::admission_policy_choices()))
      .add("--priorities", "LIST",
           "comma list of per-tenant priority classes aligned\n"
           "with --tenants (lower = more important; default\n"
           "all 0); orders contended shared-resource grants",
           [&grid](const std::string& value) -> std::optional<std::string> {
             grid.serving_defaults.priority_mix = join(split(value, ','),
                                                       "+");
             return std::nullopt;
           })
      .add("--prefill-tokens", "LIST",
           "comma list of mean prompt lengths [tokens]; any\n"
           "positive value switches transformer tenants to\n"
           "variable-length prefill/decode pricing (default 0 =\n"
           "fixed-shape requests)",
           cli::append_counts(grid.prefill_token_counts, "prefill tokens"))
      .add("--decode-tokens", "LIST",
           "comma list of mean generated lengths [tokens]; 0 =\n"
           "pure prefill (default 0; requires --prefill-tokens)",
           cli::append_counts_or_zero(grid.decode_token_counts,
                                      "decode tokens"))
      .add("--token-spread", "X",
           "relative half-width of the per-request uniform\n"
           "token-length draw, in [0,1); 0 = every request uses\n"
           "the mean lengths exactly (default 0)",
           cli::store_nonnegative_double(grid.serving_defaults.token_spread,
                                         "token spread"))
      .add("--kv-cache-mb", "MB",
           "per-tenant KV-cache activation budget [MiB]; caps\n"
           "concurrent decode slots (default 256)",
           cli::store_positive_double(grid.serving_defaults.kv_cache_mb,
                                      "KV-cache budget"))
      .add("--elastics", "LIST",
           "comma list of elastic-operation policies as\n"
           "'/'-joined k=v codec strings (\"static\",\n"
           "\"shift=0.2/tau=60\", \"gate=1e-3:1e-4\",\n"
           "\"retry=4:2e-3\", \"fault=1.0:2:1:-1\",\n"
           "\"bucket=3600/carbon=400:0.5:86400\"; see\n"
           "docs/elastic-operation.md; default static)",
           [&grid](const std::string& value) -> std::optional<std::string> {
             for (const std::string& part : split(value, ',')) {
               if (!serve::elastic_from_string(part)) {
                 return "unparseable elastic policy: " + part;
               }
               grid.elastic_policies.push_back(part);
             }
             return std::nullopt;
           })
      .add("--max-batch", "K",
           "batch bound for size/deadline/cont policies (default 8)",
           cli::store_count(grid.serving_defaults.max_batch, "max batch"))
      .add("--max-wait", "S",
           "deadline policy: max queue wait [s] (default 1e-3)",
           cli::store_nonnegative_double(grid.serving_defaults.max_wait_s,
                                         "max wait"))
      .add("--requests", "N", "total arrivals across tenants (default 2000)",
           cli::store_count(grid.serving_defaults.requests, "request count"))
      .add("--seed", "S", "arrival-process seed (default 42)",
           cli::store_count_or_zero(grid.serving_defaults.seed, "seed"))
      .add("--sla", "S",
           "latency SLA [s]; 0 derives 10x the batch-1 service\n"
           "time per tenant (default 0)",
           cli::store_nonnegative_double(grid.serving_defaults.sla_s, "SLA"))
      .add("--trace", "FILE",
           "replay a CSV arrival trace (arrival_s[,tenant])\n"
           "instead of Poisson arrivals (see optiplet_tracegen)",
           cli::store_string(grid.serving_defaults.trace_path))
      .add("--arch", "NAME", "mono|elec|siph (default siph)",
           cli::store_choice(arch, engine::architecture_from_string,
                             "architecture", "mono, elec, siph"))
      .add("--fidelity", "LIST", cli::fidelity_help(),
           cli::append_fidelities(grid.fidelities))
      .add("--threads", "N",
           "worker threads; must be a positive integer\n"
           "(default: hardware concurrency)",
           cli::store_threads(threads))
      .add("--out", "FILE", "output CSV path (default serve.csv)",
           cli::store_string(out_path))
      .add("--trace-out", "FILE",
           "also run the first scenario with request-lifecycle\n"
           "tracing and write a Chrome trace-event / Perfetto\n"
           "JSON (see docs/observability.md)",
           cli::store_string(trace_out))
      .add("--metrics-out", "FILE",
           "also run the first scenario with metric snapshots\n"
           "and write the long-format time series CSV\n"
           "(t_s,series,value)",
           cli::store_string(metrics_out))
      .add("--snapshot-period", "S",
           "sim-time between metric snapshots [s] (default:\n"
           "~64 snapshots across the arrival span)",
           cli::store_positive_double(snapshot_period_s,
                                      "snapshot period"))
      .add("--curve-out", "FILE",
           "also run the first scenario and write its\n"
           "energy-per-request / carbon day curve as CSV\n"
           "(needs an elastic policy with bucket=<s>)",
           cli::store_string(curve_out));
  cli::add_log_flags(options_set, log)
      .add_action("--list-models",
                  "print the model registry (name, family, params) and exit",
                  cli::list_models_action())
      .set_epilog("Value flags also accept the --flag=value spelling "
                  "(e.g. --rates=500).");
  if (const auto exit_code = options_set.parse(argc, argv)) {
    return *exit_code;
  }

  grid.architectures = {arch};
  grid.tenant_mixes = {join(tenants, "+")};
  if (grid.arrival_rates_rps.empty()) {
    grid.arrival_rates_rps = {grid.serving_defaults.arrival_rps};
  }
  if (grid.batch_policies.empty()) {
    grid.batch_policies = {grid.serving_defaults.policy};
  }
  if (grid.pipeline_modes.empty()) {
    grid.pipeline_modes = {grid.serving_defaults.pipeline};
  }
  if (grid.arrival_sources.empty()) {
    // A --users axis without --sources means closed loop: that is the
    // only source the axis is meaningful for.
    grid.arrival_sources = {grid.user_counts.empty()
                                ? grid.serving_defaults.source
                                : serve::ArrivalSource::kClosedLoop};
  }

  engine::SweepOptions options;
  options.threads = threads;
  if (log.debug_enabled()) {
    // Per-scenario lines replace the \r meter (they would interleave).
    options.scenario_progress =
        [&log](const engine::ScenarioProgress& p) {
          if (p.from_cache) {
            log.debug("[%zu/%zu] %s  (cache)\n", p.done, p.total,
                      p.key.c_str());
          } else {
            log.debug("[%zu/%zu] %s  %.3f s\n", p.done, p.total,
                      p.key.c_str(), p.wall_s);
          }
        };
  } else if (log.info_enabled()) {
    options.progress = [](std::size_t done, std::size_t total) {
      std::fprintf(stderr, "\r%zu/%zu serving scenarios", done, total);
      if (done == total) {
        std::fputc('\n', stderr);
      }
    };
  }

  engine::SweepRunner runner(core::default_system_config(), options);
  log.info("Running on %zu worker threads\n", runner.threads());
  engine::ResultStore store;
  try {
    store.add_all(runner.run(grid));
  } catch (const std::exception& e) {
    return options_set.fail(std::string("serving sweep failed: ") +
                            e.what());
  }
  if (store.empty()) {
    log.result("No feasible serving scenarios — nothing to report.\n");
    return 1;
  }

  util::TextTable table({"Load", "Policy", "Pipe", "Adm", "Fid",
                         "Thpt (r/s)", "Gput (r/s)", "Shed", "p50 (us)",
                         "p99 (us)", "SLA viol", "Util", "E/req (mJ)"});
  for (const auto& r : store.results()) {
    const auto& m = *r.serving;
    const auto& s = *r.spec.serving;
    // The load knob differs by source: offered rate (open loop) versus
    // the user-pool size (closed loop).
    const std::string load =
        s.source == serve::ArrivalSource::kClosedLoop
            ? std::to_string(s.users) + "u"
            : util::format_fixed(s.arrival_rps, 0);
    table.add_row({load, serve::to_string(s.policy),
                   serve::to_string(s.pipeline),
                   serve::to_string(s.admission),
                   core::to_string(r.spec.fidelity),
                   util::format_fixed(m.throughput_rps, 0),
                   util::format_fixed(m.goodput_rps, 0),
                   std::to_string(m.shed), format_us(m.p50_s),
                   format_us(m.p99_s),
                   util::format_fixed(m.sla_violation_rate, 3),
                   util::format_fixed(m.utilization, 3),
                   util::format_fixed(m.energy_per_request_j * 1e3, 3)});
  }
  log.result("Serving %s on %s, %zu scenarios (%zu threads)\n\n",
             grid.tenant_mixes.front().c_str(), accel::to_string(arch),
             store.size(), runner.threads());
  log.result("%s", table.render().c_str());

  // Self-profiling footer: where the evaluation wall-clock went and how
  // the memo layers behaved (per-scenario columns land in the CSV).
  if (log.info_enabled()) {
    double eval_wall_s = 0.0;
    std::uint64_t sim_events = 0;
    std::uint64_t oracle_hits = 0;
    std::uint64_t oracle_misses = 0;
    const engine::ScenarioResult* slowest = nullptr;
    for (const auto& r : store.results()) {
      if (r.from_cache) {
        continue;
      }
      eval_wall_s += r.eval_wall_s;
      if (slowest == nullptr || r.eval_wall_s > slowest->eval_wall_s) {
        slowest = &r;
      }
      if (r.serving) {
        sim_events += r.serving->sim_events;
        oracle_hits += r.serving->service_cache_hits;
        oracle_misses += r.serving->service_cache_misses;
      }
    }
    log.info("\nProfile: %zu simulated + %zu memoized scenarios, %.2f s "
             "eval wall, %llu sim events, oracle cache %llu hits / %llu "
             "misses\n",
             runner.cache_entries(), runner.cache_hits(), eval_wall_s,
             static_cast<unsigned long long>(sim_events),
             static_cast<unsigned long long>(oracle_hits),
             static_cast<unsigned long long>(oracle_misses));
    if (slowest != nullptr) {
      log.info("Slowest scenario: %s (%.2f s)\n",
               slowest->spec.key().c_str(), slowest->eval_wall_s);
    }
  }

  if (!store.write_csv(out_path)) {
    return options_set.fail("cannot write " + out_path);
  }
  log.result("\nServing grid written to %s\n", out_path.c_str());

  // Observability exports re-run the FIRST scenario with a recorder
  // attached; the grid results and CSV above are untouched (the recorder
  // never changes simulation results, but the re-run keeps the sweep's
  // wall-clock honest when tracing is off).
  if (!trace_out.empty() || !metrics_out.empty() || !curve_out.empty()) {
    const engine::ScenarioSpec& spec = store.results().front().spec;
    obs::RecorderOptions recorder_options;
    recorder_options.trace = !trace_out.empty();
    recorder_options.metrics = !metrics_out.empty();
    recorder_options.snapshot_period_s = snapshot_period_s;
    obs::Recorder recorder(recorder_options);
    core::SystemConfig cfg = core::default_system_config();
    spec.apply(cfg);
    serve::ServingConfig serving_config =
        serve::make_serving_config(cfg, spec.arch, *spec.serving);
    serving_config.recorder = &recorder;
    serve::ServingReport report;
    try {
      report = serve::simulate(serving_config);
    } catch (const std::exception& e) {
      return options_set.fail(std::string("instrumented run failed: ") +
                              e.what());
    }
    if (!curve_out.empty()) {
      if (report.day_curve.empty()) {
        log.info("Warning: no day curve recorded — the elastic policy "
                 "needs bucket=<s> (see --elastics)\n");
      }
      util::CsvWriter csv(curve_out,
                          {"t0_s", "dt_s", "offered", "completed",
                           "energy_j", "energy_per_request_j", "carbon_g"});
      if (!csv.ok()) {
        return options_set.fail("cannot write " + curve_out);
      }
      for (const serve::DayPoint& point : report.day_curve) {
        csv.add_row({util::format_general(point.t0_s),
                     util::format_general(point.dt_s),
                     std::to_string(point.offered),
                     std::to_string(point.completed),
                     util::format_general(point.energy_j),
                     util::format_general(point.energy_per_request_j),
                     util::format_general(point.carbon_g)});
      }
      log.result("Day curve of %s (%zu buckets) written to %s\n",
                 spec.key().c_str(), report.day_curve.size(),
                 curve_out.c_str());
    }
    if (!trace_out.empty()) {
      if (!recorder.trace().write_json(trace_out)) {
        return options_set.fail("cannot write " + trace_out);
      }
      log.result("Trace of %s (%zu spans) written to %s\n",
                 spec.key().c_str(), recorder.trace().size(),
                 trace_out.c_str());
    }
    if (!metrics_out.empty()) {
      if (!recorder.metrics().write_csv(metrics_out)) {
        return options_set.fail("cannot write " + metrics_out);
      }
      log.result("Metric snapshots of %s (%zu series) written to %s\n",
                 spec.key().c_str(), recorder.metrics().series_count(),
                 metrics_out.c_str());
    }
  }
  return 0;
}
