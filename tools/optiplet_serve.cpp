/// \file optiplet_serve.cpp
/// Command-line front end of the request-level serving simulator: declare
/// the tenant mix, offered-load points, and batching policies; evaluate
/// the (rates x policies x fidelities) serving grid on a worker pool; and
/// dump the tail-latency/throughput/energy columns as CSV.
///
/// Examples:
///   optiplet_serve --tenants LeNet5 --rates 500,1000,2000
///   optiplet_serve --tenants MobileNetV2,ResNet50 --rates 400 \
///       --policies none,deadline --max-batch 8 --max-wait 2e-3
///   optiplet_serve --tenants LeNet5 --rates 1000 --fidelity cycle
///   optiplet_serve --tenants ResNet50,DenseNet121 --rates 300 \
///       --pipelines batch,layer
///   optiplet_serve --tenants LeNet5 --users 8,32,128 --think 5e-3
///   optiplet_serve --tenants ResNet50,DenseNet121 --priorities 0,1 \
///       --admission all,shed --rates 600
///   optiplet_serve --trace arrivals.csv --tenants LeNet5 --policies size

#include <algorithm>
#include <cstdio>
#include <optional>
#include <string>
#include <vector>

#include "cli_support.hpp"
#include "dnn/zoo.hpp"
#include "engine/result_store.hpp"
#include "engine/scenario.hpp"
#include "engine/sweep_runner.hpp"
#include "util/table.hpp"

namespace {

using namespace optiplet;
using cli::join;
using cli::parse_count;
using cli::parse_double;
using cli::split;

constexpr const char* kUsage =
    R"(optiplet_serve — request-level inference serving simulator

Serves a request stream against the 2.5D platform: open-loop (seeded
Poisson or replayed-trace) or closed-loop (client-pool) arrivals per
tenant, an admission/batching policy with optional SLA-aware shedding,
chiplet-pool partitioning between co-located tenants, and the
full-system simulator as the (memoized) batch service-time oracle.
Reports throughput, goodput, p50/p95/p99 latency, SLA violations, shed
counts, utilization, and energy per request.

  --tenants NAMES      comma list of co-located Table-2 models
                       (default LeNet5; see --list-models)
  --rates LIST         comma list of aggregate offered loads [requests/s]
                       (default 200; split evenly over the tenants;
                       open-loop only)
  --policies LIST      comma list of none|size|deadline (default none)
  --pipelines LIST     comma list of batch|layer execution granularities
                       (default batch; layer = SET-style inter-layer
                       pipelining with scarce-group handoff)
  --sources LIST       comma list of open|closed arrival sources
                       (default open; closed = N users per tenant issuing
                       one request each, thinking between responses)
  --users LIST         comma list of closed-loop users per tenant
                       (default 16; implies --sources closed when
                       --sources is not given)
  --think S            closed-loop mean exponential think time [s]
                       (default 1e-2)
  --admission LIST     comma list of all|shed (default all; shed rejects
                       arrivals whose predicted completion misses the SLA)
  --priorities LIST    comma list of per-tenant priority classes aligned
                       with --tenants (lower = more important; default
                       all 0); orders contended shared-resource grants
  --max-batch K        batch bound for size/deadline policies (default 8)
  --max-wait S         deadline policy: max queue wait [s] (default 1e-3)
  --requests N         total arrivals across tenants (default 2000)
  --seed S             arrival-process seed (default 42)
  --sla S              latency SLA [s]; 0 derives 10x the batch-1 service
                       time per tenant (default 0)
  --trace FILE         replay a CSV arrival trace (arrival_s[,tenant])
                       instead of Poisson arrivals (see optiplet_tracegen)
  --arch NAME          mono|elec|siph (default siph)
  --fidelity LIST      comma list of analytical|cycle (default analytical)
  --threads N          worker threads (default 0 = hardware concurrency)
  --out FILE           output CSV path (default serve.csv)
  --quiet              suppress the progress meter
  --list-models        print the Table-2 model names and exit
  --help               this text

Value flags also accept the --flag=value spelling (e.g. --rates=500).
)";

int fail(const std::string& message) {
  std::fprintf(stderr, "optiplet_serve: %s\n", message.c_str());
  std::fprintf(stderr, "Run with --help for usage.\n");
  return 2;
}

std::string format_us(double seconds) {
  return util::format_fixed(seconds * 1e6, 1);
}

}  // namespace

int main(int argc, char** argv) {
  engine::ScenarioGrid grid;
  grid.serving_defaults.requests = 2000;
  std::vector<std::string> tenants = {"LeNet5"};
  accel::Architecture arch = accel::Architecture::kSiph2p5D;
  std::size_t threads = 0;
  std::string out_path = "serve.csv";
  bool quiet = false;

  cli::FlagCursor cursor(argc, argv);
  while (cursor.next()) {
    const std::string& arg = cursor.flag();
    if (cursor.has_inline_value() &&
        (arg == "--help" || arg == "-h" || arg == "--quiet" ||
         arg == "--list-models")) {
      return fail("flag does not take a value: " + arg);
    }
    if (arg == "--help" || arg == "-h") {
      std::fputs(kUsage, stdout);
      return 0;
    }
    if (arg == "--list-models") {
      for (const auto& name : dnn::zoo::model_names()) {
        std::printf("%s\n", name.c_str());
      }
      return 0;
    }
    if (arg == "--quiet") {
      quiet = true;
      continue;
    }
    const bool known_value_flag =
        arg == "--tenants" || arg == "--rates" || arg == "--policies" ||
        arg == "--pipelines" || arg == "--sources" || arg == "--users" ||
        arg == "--think" || arg == "--admission" || arg == "--priorities" ||
        arg == "--max-batch" || arg == "--max-wait" ||
        arg == "--requests" || arg == "--seed" || arg == "--sla" ||
        arg == "--trace" || arg == "--arch" || arg == "--fidelity" ||
        arg == "--threads" || arg == "--out";
    if (!known_value_flag) {
      return fail("unknown flag: " + arg);
    }
    const auto value = cursor.value();
    if (!value) {
      return fail("missing value for " + arg);
    }
    if (arg == "--tenants") {
      const auto known = dnn::zoo::model_names();
      tenants = split(*value, ',');
      for (const auto& name : tenants) {
        if (std::find(known.begin(), known.end(), name) == known.end()) {
          return fail("unknown model: " + name +
                      " (valid: " + join(known, ", ") + ")");
        }
      }
    } else if (arg == "--rates") {
      for (const auto& text : split(*value, ',')) {
        const auto rate = parse_double(text);
        if (!rate || *rate <= 0.0) {
          return fail("bad arrival rate: " + text);
        }
        grid.arrival_rates_rps.push_back(*rate);
      }
    } else if (arg == "--policies") {
      for (const auto& name : split(*value, ',')) {
        const auto policy = serve::batch_policy_from_string(name);
        if (!policy) {
          return fail("unknown batch policy: " + name +
                      " (valid: none, size, deadline)");
        }
        grid.batch_policies.push_back(*policy);
      }
    } else if (arg == "--pipelines") {
      for (const auto& name : split(*value, ',')) {
        const auto mode = serve::pipeline_mode_from_string(name);
        if (!mode) {
          return fail("unknown pipeline mode: " + name +
                      " (valid: batch, layer)");
        }
        grid.pipeline_modes.push_back(*mode);
      }
    } else if (arg == "--sources") {
      for (const auto& name : split(*value, ',')) {
        const auto source = serve::arrival_source_from_string(name);
        if (!source) {
          return fail("unknown arrival source: " + name +
                      " (valid: open, closed)");
        }
        grid.arrival_sources.push_back(*source);
      }
    } else if (arg == "--users") {
      for (const auto& text : split(*value, ',')) {
        const auto users = parse_count(text);
        if (!users || *users == 0) {
          return fail("bad user count: " + text);
        }
        grid.user_counts.push_back(static_cast<unsigned>(*users));
      }
    } else if (arg == "--think") {
      const auto think = parse_double(*value);
      if (!think || *think < 0.0) {
        return fail("bad think time: " + *value);
      }
      grid.serving_defaults.think_s = *think;
    } else if (arg == "--admission") {
      for (const auto& name : split(*value, ',')) {
        const auto admission = serve::admission_policy_from_string(name);
        if (!admission) {
          return fail("unknown admission policy: " + name +
                      " (valid: all, shed)");
        }
        grid.admission_policies.push_back(*admission);
      }
    } else if (arg == "--priorities") {
      grid.serving_defaults.priority_mix = join(split(*value, ','), "+");
    } else if (arg == "--max-batch") {
      const auto k = parse_count(*value);
      if (!k || *k == 0) {
        return fail("bad max batch: " + *value);
      }
      grid.serving_defaults.max_batch = static_cast<unsigned>(*k);
    } else if (arg == "--max-wait") {
      const auto wait = parse_double(*value);
      if (!wait || *wait < 0.0) {
        return fail("bad max wait: " + *value);
      }
      grid.serving_defaults.max_wait_s = *wait;
    } else if (arg == "--requests") {
      const auto n = parse_count(*value);
      if (!n || *n == 0) {
        return fail("bad request count: " + *value);
      }
      grid.serving_defaults.requests = *n;
    } else if (arg == "--seed") {
      const auto seed = parse_count(*value);
      if (!seed) {
        return fail("bad seed: " + *value);
      }
      grid.serving_defaults.seed = *seed;
    } else if (arg == "--sla") {
      const auto sla = parse_double(*value);
      if (!sla || *sla < 0.0) {
        return fail("bad SLA: " + *value);
      }
      grid.serving_defaults.sla_s = *sla;
    } else if (arg == "--trace") {
      grid.serving_defaults.trace_path = *value;
    } else if (arg == "--arch") {
      const auto parsed = engine::architecture_from_string(*value);
      if (!parsed) {
        return fail("unknown architecture: " + *value +
                    " (valid: mono, elec, siph)");
      }
      arch = *parsed;
    } else if (arg == "--fidelity") {
      for (const auto& name : split(*value, ',')) {
        const auto fid = engine::fidelity_from_string(name);
        if (!fid) {
          return fail("unknown fidelity: " + name +
                      " (valid: analytical, cycle)");
        }
        grid.fidelities.push_back(*fid);
      }
    } else if (arg == "--threads") {
      const auto count = parse_count(*value);
      if (!count) {
        return fail("bad thread count: " + *value);
      }
      threads = *count;
    } else {  // --out, the last known_value_flag
      out_path = *value;
    }
  }

  grid.architectures = {arch};
  grid.tenant_mixes = {join(tenants, "+")};
  if (grid.arrival_rates_rps.empty()) {
    grid.arrival_rates_rps = {grid.serving_defaults.arrival_rps};
  }
  if (grid.batch_policies.empty()) {
    grid.batch_policies = {grid.serving_defaults.policy};
  }
  if (grid.pipeline_modes.empty()) {
    grid.pipeline_modes = {grid.serving_defaults.pipeline};
  }
  if (grid.arrival_sources.empty()) {
    // A --users axis without --sources means closed loop: that is the
    // only source the axis is meaningful for.
    grid.arrival_sources = {grid.user_counts.empty()
                                ? grid.serving_defaults.source
                                : serve::ArrivalSource::kClosedLoop};
  }

  engine::SweepOptions options;
  options.threads = threads;
  if (!quiet) {
    options.progress = [](std::size_t done, std::size_t total) {
      std::fprintf(stderr, "\r%zu/%zu serving scenarios", done, total);
      if (done == total) {
        std::fputc('\n', stderr);
      }
    };
  }

  engine::SweepRunner runner(core::default_system_config(), options);
  engine::ResultStore store;
  try {
    store.add_all(runner.run(grid));
  } catch (const std::exception& e) {
    return fail(std::string("serving sweep failed: ") + e.what());
  }
  if (store.empty()) {
    std::printf("No feasible serving scenarios — nothing to report.\n");
    return 1;
  }

  util::TextTable table({"Load", "Policy", "Pipe", "Adm", "Fid",
                         "Thpt (r/s)", "Gput (r/s)", "Shed", "p50 (us)",
                         "p99 (us)", "SLA viol", "Util", "E/req (mJ)"});
  for (const auto& r : store.results()) {
    const auto& m = *r.serving;
    const auto& s = *r.spec.serving;
    // The load knob differs by source: offered rate (open loop) versus
    // the user-pool size (closed loop).
    const std::string load =
        s.source == serve::ArrivalSource::kClosedLoop
            ? std::to_string(s.users) + "u"
            : util::format_fixed(s.arrival_rps, 0);
    table.add_row({load, serve::to_string(s.policy),
                   serve::to_string(s.pipeline),
                   serve::to_string(s.admission),
                   core::to_string(r.spec.fidelity),
                   util::format_fixed(m.throughput_rps, 0),
                   util::format_fixed(m.goodput_rps, 0),
                   std::to_string(m.shed), format_us(m.p50_s),
                   format_us(m.p99_s),
                   util::format_fixed(m.sla_violation_rate, 3),
                   util::format_fixed(m.utilization, 3),
                   util::format_fixed(m.energy_per_request_j * 1e3, 3)});
  }
  std::printf("Serving %s on %s, %zu scenarios (%zu threads)\n\n",
              grid.tenant_mixes.front().c_str(), accel::to_string(arch),
              store.size(), runner.threads());
  std::fputs(table.render().c_str(), stdout);

  if (!store.write_csv(out_path)) {
    return fail("cannot write " + out_path);
  }
  std::printf("\nServing grid written to %s\n", out_path.c_str());
  return 0;
}
