#!/usr/bin/env python3
"""Validator for the trace-event JSON the simulators emit.

Checks the Chrome trace-event files written by `--trace-out`
(optiplet_serve / optiplet_cluster) without any third-party tooling:

* the file parses as a JSON object with a `traceEvents` array
* every event carries the required keys (`name`, `ph`, `ts`, `pid`,
  `tid`), a known phase (`X` complete / `i` instant / `M` metadata),
  finite non-negative timestamps, and a non-negative `dur` on complete
  spans
* timestamps are monotone non-decreasing within every (pid, tid) track
  (the writer sorts stably by ts; a violation means a corrupted merge)
* per package (pid), the request-span census reconciles with that
  package's `serving_totals` summary instant exactly:
  offered == request spans == completed + shed + abandoned spans (an
  abandoned span is a client whose retry budget ran out — see
  docs/elastic-operation.md), and every shed span is zero-duration with
  a `shed_reason` tag

See docs/observability.md for the span taxonomy. CI's bench-smoke job
runs this on a diurnal-trace artifact; `tests/obs/` covers the same
invariants in-process.

Usage: check_trace_json.py FILE [FILE ...]
Exits non-zero on any violation.
"""

import json
import math
import sys

PHASES = {"X", "i", "M"}
REQUIRED_KEYS = ("name", "ph", "ts", "pid", "tid")


def fail(failures, path, message):
    failures.append(f"{path}: {message}")


def check_schema(path, events, failures):
    """Per-event key/type checks; returns only the well-formed events."""
    good = []
    for index, event in enumerate(events):
        where = f"traceEvents[{index}]"
        if not isinstance(event, dict):
            fail(failures, path, f"{where}: not an object")
            continue
        missing = [k for k in REQUIRED_KEYS if k not in event]
        if missing:
            fail(failures, path, f"{where}: missing keys {missing}")
            continue
        if event["ph"] not in PHASES:
            fail(failures, path, f"{where}: unknown phase {event['ph']!r}")
            continue
        ts = event["ts"]
        if not isinstance(ts, (int, float)) or not math.isfinite(ts) or ts < 0:
            fail(failures, path, f"{where}: bad ts {ts!r}")
            continue
        if event["ph"] == "X":
            dur = event.get("dur")
            if (
                not isinstance(dur, (int, float))
                or not math.isfinite(dur)
                or dur < 0
            ):
                fail(failures, path, f"{where}: bad dur {dur!r}")
                continue
        good.append(event)
    return good


def check_monotone_tracks(path, events, failures):
    """File order must be non-decreasing in ts within every track."""
    last = {}
    for event in events:
        if event["ph"] == "M":
            continue
        track = (event["pid"], event["tid"])
        if track in last and event["ts"] < last[track]:
            fail(
                failures,
                path,
                f"track pid={track[0]} tid={track[1]}: ts {event['ts']} "
                f"after {last[track]}",
            )
        last[track] = event["ts"]


def check_request_reconciliation(path, events, failures):
    """offered == request spans == completed + shed + abandoned, per pid."""
    spans = {}  # pid -> [completed, shed, abandoned]
    totals = {}  # pid -> {offered, completed, shed, abandoned}
    for event in events:
        args = event.get("args", {})
        if event["ph"] == "X" and event["name"] == "request":
            counts = spans.setdefault(event["pid"], [0, 0, 0])
            outcome = args.get("outcome")
            if outcome == "completed":
                counts[0] += 1
            elif outcome == "abandoned":
                counts[2] += 1
            elif outcome == "shed":
                counts[1] += 1
                if event.get("dur", 0) != 0:
                    fail(
                        failures,
                        path,
                        f"pid {event['pid']}: shed request span with "
                        f"nonzero dur {event['dur']}",
                    )
                if not args.get("shed_reason"):
                    fail(
                        failures,
                        path,
                        f"pid {event['pid']}: shed request span without "
                        "a shed_reason tag",
                    )
            else:
                fail(
                    failures,
                    path,
                    f"pid {event['pid']}: request span with outcome "
                    f"{outcome!r}",
                )
        elif event["ph"] == "i" and event["name"] == "serving_totals":
            if event["pid"] in totals:
                fail(
                    failures,
                    path,
                    f"pid {event['pid']}: duplicate serving_totals",
                )
            totals[event["pid"]] = args
    if not totals and spans:
        fail(failures, path, "request spans but no serving_totals instant")
    for pid, args in sorted(totals.items()):
        completed, shed, abandoned = spans.get(pid, [0, 0, 0])
        try:
            offered = int(args["offered"])
            reported_completed = int(args["completed"])
            reported_shed = int(args["shed"])
            # Older traces predate the elastic retry path and carry no
            # abandoned counter; their census has no abandoned spans.
            reported_abandoned = int(args.get("abandoned", 0))
        except (KeyError, TypeError, ValueError):
            fail(failures, path, f"pid {pid}: malformed serving_totals args")
            continue
        if offered != reported_completed + reported_shed + reported_abandoned:
            fail(
                failures,
                path,
                f"pid {pid}: offered {offered} != completed "
                f"{reported_completed} + shed {reported_shed} + abandoned "
                f"{reported_abandoned}",
            )
        if (completed, shed, abandoned) != (
            reported_completed,
            reported_shed,
            reported_abandoned,
        ):
            fail(
                failures,
                path,
                f"pid {pid}: span census ({completed} completed, {shed} "
                f"shed, {abandoned} abandoned) disagrees with "
                f"serving_totals ({reported_completed}, {reported_shed}, "
                f"{reported_abandoned})",
            )


def check_file(path):
    failures = []
    try:
        with open(path, encoding="utf-8") as handle:
            document = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        return [f"{path}: cannot parse ({error})"]
    events = document.get("traceEvents")
    if not isinstance(events, list):
        return [f"{path}: no traceEvents array"]
    if not events:
        return [f"{path}: empty traceEvents"]
    good = check_schema(path, events, failures)
    check_monotone_tracks(path, good, failures)
    check_request_reconciliation(path, good, failures)
    if not failures:
        packages = {e["pid"] for e in good if e["ph"] != "M"}
        print(
            f"{path}: OK ({len(good)} events, "
            f"{len(packages)} process(es))"
        )
    return failures


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    failures = []
    for path in argv[1:]:
        failures.extend(check_file(path))
    for failure in failures:
        print(f"FAIL {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
