#pragma once
/// \file cli_support.hpp
/// Flag parsing shared by the optiplet command-line tools.
///
/// The tools declare their interface as an OptionSet: a table of flags,
/// each with a placeholder, help text, and a parse action. The registry
/// derives everything that used to be triplicated per tool — the
/// `--flag value` / `--flag=value` walk, the generated `--help` listing,
/// the "unknown flag" / "missing value" / "flag does not take a value"
/// errors, and the valid-choice listings on bad enum values — so a new
/// spelling (like `--fidelity sampled:windows=8,seed=1`) is implemented
/// exactly once.

#include <algorithm>
#include <cstdarg>
#include <cstdio>
#include <functional>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/fidelity.hpp"
#include "dnn/registry.hpp"
#include "dnn/zoo.hpp"
#include "util/strings.hpp"

namespace optiplet::cli {

using util::join;
using util::split;

// ---------------------------------------------------------------------
// Leveled output shared by the tools. Three verbosity tiers:
//   quiet  primary results only (tables, CSV paths) — what --quiet
//          always kept
//   info   plus the run narrative on stderr (progress meter, thread
//          count, the profiling footer); the default
//   debug  plus per-scenario detail (keys, wall-clock, cache hits)

enum class LogLevel { kQuiet = 0, kInfo = 1, kDebug = 2 };

inline std::optional<LogLevel> log_level_from_string(
    const std::string& text) {
  if (text == "quiet") {
    return LogLevel::kQuiet;
  }
  if (text == "info") {
    return LogLevel::kInfo;
  }
  if (text == "debug") {
    return LogLevel::kDebug;
  }
  return std::nullopt;
}

/// The one printer every tool's ad-hoc printf routes through. Primary
/// results go to stdout unconditionally; narrative and detail go to
/// stderr gated by the level, so piping a tool's stdout into a file
/// stays clean at any verbosity.
class Logger {
 public:
  explicit Logger(LogLevel level = LogLevel::kInfo) : level_(level) {}

  void set_level(LogLevel level) { level_ = level; }
  [[nodiscard]] LogLevel level() const { return level_; }
  [[nodiscard]] bool info_enabled() const {
    return level_ >= LogLevel::kInfo;
  }
  [[nodiscard]] bool debug_enabled() const {
    return level_ >= LogLevel::kDebug;
  }

  /// Primary result output (tables, output-file confirmations): stdout,
  /// printed at every level.
  void result(const char* format, ...) const {
    std::va_list args;
    va_start(args, format);
    std::vfprintf(stdout, format, args);
    va_end(args);
  }

  /// Run narrative: stderr, printed at info and debug.
  void info(const char* format, ...) const {
    if (!info_enabled()) {
      return;
    }
    std::va_list args;
    va_start(args, format);
    std::vfprintf(stderr, format, args);
    va_end(args);
  }

  /// Per-scenario / internals detail: stderr, printed at debug only.
  void debug(const char* format, ...) const {
    if (!debug_enabled()) {
      return;
    }
    std::va_list args;
    va_start(args, format);
    std::vfprintf(stderr, format, args);
    va_end(args);
  }

 private:
  LogLevel level_;
};

inline std::optional<double> parse_double(const std::string& text) {
  try {
    std::size_t used = 0;
    const double value = std::stod(text, &used);
    if (used != text.size()) {
      return std::nullopt;
    }
    return value;
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

inline std::optional<std::size_t> parse_count(const std::string& text) {
  const auto value = parse_double(text);
  if (!value || *value < 0 ||
      *value != static_cast<double>(static_cast<std::size_t>(*value))) {
    return std::nullopt;
  }
  return static_cast<std::size_t>(*value);
}

/// Walks argv-style arguments with support for both the `--flag value`
/// and `--flag=value` spellings.
class FlagCursor {
 public:
  FlagCursor(int argc, char** argv) : args_(argv + 1, argv + argc) {}

  /// Advance to the next argument; false at the end.
  bool next() {
    if (index_ >= args_.size()) {
      return false;
    }
    flag_ = args_[index_++];
    inline_value_.reset();
    if (flag_.rfind("--", 0) == 0) {
      if (const auto eq = flag_.find('='); eq != std::string::npos) {
        inline_value_ = flag_.substr(eq + 1);
        flag_ = flag_.substr(0, eq);
      }
    }
    return true;
  }

  /// The current flag name (the part before '=' for --flag=value).
  [[nodiscard]] const std::string& flag() const { return flag_; }

  /// True when the current flag was spelled --flag=value (an error for
  /// flags that take no value).
  [[nodiscard]] bool has_inline_value() const {
    return inline_value_.has_value();
  }

  /// The current flag's value: the inline part, or the next argument
  /// (consumed). nullopt when neither exists.
  [[nodiscard]] std::optional<std::string> value() {
    if (inline_value_) {
      return inline_value_;
    }
    if (index_ >= args_.size()) {
      return std::nullopt;
    }
    return args_[index_++];
  }

 private:
  std::vector<std::string> args_;
  std::size_t index_ = 0;
  std::string flag_;
  std::optional<std::string> inline_value_;
};

/// Declarative flag table: parse + generated --help + consistent errors.
class OptionSet {
 public:
  /// A value flag's parse action: consume the value, return an error
  /// message to abort with, or nullopt on success.
  using Parse = std::function<std::optional<std::string>(const std::string&)>;

  /// `intro` is the prose printed between the "program — tagline" title
  /// and the flag listing (the tool's semantic description).
  OptionSet(std::string program, std::string intro)
      : program_(std::move(program)), intro_(std::move(intro)) {}

  /// A flag taking a value (shown as `--flag PLACEHOLDER` in --help).
  OptionSet& add(std::string flag, std::string placeholder, std::string help,
                 Parse parse) {
    entries_.push_back({std::move(flag), std::move(placeholder),
                        std::move(help), std::move(parse), nullptr, nullptr,
                        {}});
    return *this;
  }

  /// A boolean flag (no value; `on` runs when it appears).
  OptionSet& add_toggle(std::string flag, std::string help,
                        std::function<void()> on) {
    entries_.push_back({std::move(flag), {}, std::move(help), nullptr,
                        std::move(on), nullptr, {}});
    return *this;
  }

  /// An immediate flag (no value; `run` runs and its result becomes the
  /// process exit code — e.g. --list-models).
  OptionSet& add_action(std::string flag, std::string help,
                        std::function<int()> run) {
    entries_.push_back({std::move(flag), {}, std::move(help), nullptr,
                        nullptr, std::move(run), {}});
    return *this;
  }

  /// Verbatim lines inside the flag listing (section headers like the
  /// tracegen per-profile knob groups).
  OptionSet& add_text(std::string raw) {
    entries_.push_back({{}, {}, {}, nullptr, nullptr, nullptr,
                        std::move(raw)});
    return *this;
  }

  /// Trailing free-form help text (after the flag listing).
  OptionSet& set_epilog(std::string epilog) {
    epilog_ = std::move(epilog);
    return *this;
  }

  /// Print the error, point at --help, exit code 2. Shared with the
  /// tools' own post-parse validation for uniform diagnostics.
  [[nodiscard]] int fail(const std::string& message) const {
    std::fprintf(stderr, "%s: %s\n", program_.c_str(), message.c_str());
    std::fprintf(stderr, "Run with --help for usage.\n");
    return 2;
  }

  [[nodiscard]] std::string help_text() const {
    std::string out = intro_;
    if (!out.empty() && out.back() != '\n') {
      out += '\n';
    }
    out += '\n';
    for (const auto& e : entries_) {
      if (!e.raw.empty()) {
        out += e.raw;
        out += '\n';
        continue;
      }
      std::string label = e.flag;
      if (!e.placeholder.empty()) {
        label += ' ';
        label += e.placeholder;
      }
      out += "  " + label;
      out += std::string(label.size() < 20 ? 20 - label.size() + 1 : 1, ' ');
      // Continuation lines of multi-line help indent to the same column.
      for (const char c : e.help) {
        out += c;
        if (c == '\n') {
          out += std::string(23, ' ');
        }
      }
      out += '\n';
    }
    out += "  --help               this text\n";
    if (!epilog_.empty()) {
      out += '\n';
      out += epilog_;
      if (epilog_.back() != '\n') {
        out += '\n';
      }
    }
    return out;
  }

  /// Walk argv and dispatch every flag. Returns nullopt when the tool
  /// should proceed, or the exit code to return (0 after --help or an
  /// action flag, 2 on any parse error).
  [[nodiscard]] std::optional<int> parse(int argc, char** argv) const {
    FlagCursor cursor(argc, argv);
    while (cursor.next()) {
      const std::string& arg = cursor.flag();
      const bool is_help = arg == "--help" || arg == "-h";
      const Entry* entry = nullptr;
      for (const auto& e : entries_) {
        if (!e.raw.empty() || e.flag != arg) {
          continue;
        }
        entry = &e;
        break;
      }
      if (!entry && !is_help) {
        return fail("unknown flag: " + arg);
      }
      if (is_help || !entry->parse) {
        if (cursor.has_inline_value()) {
          return fail("flag does not take a value: " + arg);
        }
        if (is_help) {
          std::fputs(help_text().c_str(), stdout);
          return 0;
        }
        if (entry->action) {
          return entry->action();
        }
        entry->toggle();
        continue;
      }
      const auto value = cursor.value();
      if (!value) {
        return fail("missing value for " + arg);
      }
      if (const auto error = entry->parse(*value)) {
        return fail(*error);
      }
    }
    return std::nullopt;
  }

 private:
  struct Entry {
    std::string flag;
    std::string placeholder;
    std::string help;
    Parse parse;                 ///< value flags
    std::function<void()> toggle;  ///< boolean flags
    std::function<int()> action;   ///< immediate-exit flags
    std::string raw;             ///< verbatim help lines
  };

  std::string program_;
  std::string intro_;
  std::string epilog_;
  std::vector<Entry> entries_;
};

// ---------------------------------------------------------------------
// Parse-action factories for the recurring flag shapes. Each returns an
// OptionSet::Parse closure over the destination; error strings carry the
// valid-choice listings the tools used to hand-roll.

/// Comma list of named choices appended through `from_string`.
template <typename T, typename F>
OptionSet::Parse append_choices(std::vector<T>& out, F from_string,
                                std::string what, std::string valid) {
  return [&out, from_string, what = std::move(what),
          valid = std::move(valid)](
             const std::string& text) -> std::optional<std::string> {
    for (const auto& name : split(text, ',')) {
      const auto value = from_string(name);
      if (!value) {
        return "unknown " + what + ": " + name + " (valid: " + valid + ")";
      }
      out.push_back(*value);
    }
    return std::nullopt;
  };
}

/// One named choice stored through `from_string`.
template <typename T, typename F>
OptionSet::Parse store_choice(T& out, F from_string, std::string what,
                              std::string valid) {
  return [&out, from_string, what = std::move(what),
          valid = std::move(valid)](
             const std::string& text) -> std::optional<std::string> {
    const auto value = from_string(text);
    if (!value) {
      return "unknown " + what + ": " + text + " (valid: " + valid + ")";
    }
    out = *value;
    return std::nullopt;
  };
}

/// Comma list of positive integers.
template <typename T>
OptionSet::Parse append_counts(std::vector<T>& out, std::string what) {
  return [&out, what = std::move(what)](
             const std::string& text) -> std::optional<std::string> {
    for (const auto& part : split(text, ',')) {
      const auto value = parse_count(part);
      if (!value || *value == 0) {
        return "bad " + what + ": " + part;
      }
      out.push_back(static_cast<T>(*value));
    }
    return std::nullopt;
  };
}

/// Comma list of non-negative integers (token counts, where 0 is a
/// meaningful value: e.g. pure-prefill requests with no decode phase).
template <typename T>
OptionSet::Parse append_counts_or_zero(std::vector<T>& out,
                                       std::string what) {
  return [&out, what = std::move(what)](
             const std::string& text) -> std::optional<std::string> {
    for (const auto& part : split(text, ',')) {
      const auto value = parse_count(part);
      if (!value) {
        return "bad " + what + ": " + part;
      }
      out.push_back(static_cast<T>(*value));
    }
    return std::nullopt;
  };
}

/// Comma list of strictly positive doubles.
inline OptionSet::Parse append_positive_doubles(std::vector<double>& out,
                                                std::string what) {
  return [&out, what = std::move(what)](
             const std::string& text) -> std::optional<std::string> {
    for (const auto& part : split(text, ',')) {
      const auto value = parse_double(part);
      if (!value || *value <= 0.0) {
        return "bad " + what + ": " + part;
      }
      out.push_back(*value);
    }
    return std::nullopt;
  };
}

/// One positive integer.
template <typename T>
OptionSet::Parse store_count(T& out, std::string what) {
  return [&out, what = std::move(what)](
             const std::string& text) -> std::optional<std::string> {
    const auto value = parse_count(text);
    if (!value || *value == 0) {
      return "bad " + what + ": " + text;
    }
    out = static_cast<T>(*value);
    return std::nullopt;
  };
}

/// One non-negative integer (seeds).
template <typename T>
OptionSet::Parse store_count_or_zero(T& out, std::string what) {
  return [&out, what = std::move(what)](
             const std::string& text) -> std::optional<std::string> {
    const auto value = parse_count(text);
    if (!value) {
      return "bad " + what + ": " + text;
    }
    out = static_cast<T>(*value);
    return std::nullopt;
  };
}

/// One double (any value).
inline OptionSet::Parse store_double(double& out, std::string what) {
  return [&out, what = std::move(what)](
             const std::string& text) -> std::optional<std::string> {
    const auto value = parse_double(text);
    if (!value) {
      return "bad " + what + ": " + text;
    }
    out = *value;
    return std::nullopt;
  };
}

/// One strictly positive double.
inline OptionSet::Parse store_positive_double(double& out, std::string what) {
  return [&out, what = std::move(what)](
             const std::string& text) -> std::optional<std::string> {
    const auto value = parse_double(text);
    if (!value || *value <= 0.0) {
      return "bad " + what + ": " + text;
    }
    out = *value;
    return std::nullopt;
  };
}

/// One non-negative double.
inline OptionSet::Parse store_nonnegative_double(double& out,
                                                 std::string what) {
  return [&out, what = std::move(what)](
             const std::string& text) -> std::optional<std::string> {
    const auto value = parse_double(text);
    if (!value || *value < 0.0) {
      return "bad " + what + ": " + text;
    }
    out = *value;
    return std::nullopt;
  };
}

/// One string, stored verbatim.
inline OptionSet::Parse store_string(std::string& out) {
  return [&out](const std::string& text) -> std::optional<std::string> {
    out = text;
    return std::nullopt;
  };
}

/// Worker-thread count: positive, with the "omit the flag" hint.
inline OptionSet::Parse store_threads(std::size_t& out) {
  return [&out](const std::string& text) -> std::optional<std::string> {
    const auto value = parse_count(text);
    if (!value || *value == 0) {
      return "bad thread count: " + text +
             " (need a positive integer; omit the flag for "
             "hardware concurrency)";
    }
    out = *value;
    return std::nullopt;
  };
}

/// Comma list of model names, validated against the model registry (the
/// Table-2 CNNs plus the transformer family) and stored as the full list
/// (later occurrences replace earlier ones).
inline OptionSet::Parse store_model_list(std::vector<std::string>& out) {
  return [&out](const std::string& text) -> std::optional<std::string> {
    const auto& registry = dnn::ModelRegistry::instance();
    auto names = split(text, ',');
    for (const auto& name : names) {
      if (registry.find(name) == nullptr) {
        return "unknown model: " + name +
               " (valid: " + join(registry.names(), ", ") + ")";
      }
    }
    out = std::move(names);
    return std::nullopt;
  };
}

/// The one --fidelity implementation all sim tools share: a comma list of
/// FidelitySpec spellings, with sampled:knob=value groups folded back
/// together by core::split_fidelity_list.
inline OptionSet::Parse append_fidelities(
    std::vector<core::FidelitySpec>& out) {
  return [&out](const std::string& text) -> std::optional<std::string> {
    for (const auto& name : core::split_fidelity_list(text)) {
      const auto spec = core::fidelity_from_string(name);
      if (!spec) {
        return "unknown fidelity: " + name +
               " (valid: analytical, cycle, "
               "sampled[:windows=W,layers=L,seed=S,conf=C])";
      }
      out.push_back(*spec);
    }
    return std::nullopt;
  };
}

/// Shared --fidelity help text (the axis is spelled identically in
/// optiplet_sweep / optiplet_serve / optiplet_cluster).
inline const char* fidelity_help() {
  return "comma list of analytical|cycle|sampled (default\n"
         "analytical). \"cycle\" drives the SiPh interposer\n"
         "cycle-accurately (SWMR/SWSR arbitration + in-cycle\n"
         "ReSiPI epochs); \"sampled\" cycle-simulates a seeded\n"
         "subset of layer windows and fast-forwards the rest\n"
         "analytically with a calibrated correction, e.g.\n"
         "sampled:windows=8,layers=1,seed=1,conf=0.95. Other\n"
         "architectures always use the analytical model";
}

/// Shared --log-level / --quiet registration. --quiet stays as the
/// shorthand for --log-level quiet that scripts and the ctest smokes
/// already use.
inline OptionSet& add_log_flags(OptionSet& options, Logger& log) {
  options
      .add("--log-level", "LEVEL",
           "quiet|info|debug (default info): quiet keeps only\n"
           "the result output, debug adds per-scenario timing\n"
           "and cache detail on stderr",
           [&log](const std::string& text) -> std::optional<std::string> {
             const auto level = log_level_from_string(text);
             if (!level) {
               return "unknown log level: " + text +
                      " (valid: quiet, info, debug)";
             }
             log.set_level(*level);
             return std::nullopt;
           })
      .add_toggle("--quiet", "shorthand for --log-level quiet",
                  [&log] { log.set_level(LogLevel::kQuiet); });
  return options;
}

/// Shared --list-models action: the registry catalog with family and
/// derived size, so the listing can never drift from the graphs.
inline std::function<int()> list_models_action() {
  return [] {
    for (const auto& info : dnn::ModelRegistry::instance().models()) {
      std::printf("%-16s %-12s %10llu params\n", info.name.c_str(),
                  dnn::to_string(info.family),
                  static_cast<unsigned long long>(info.params));
    }
    return 0;
  };
}

}  // namespace optiplet::cli
