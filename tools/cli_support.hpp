#pragma once
/// \file cli_support.hpp
/// Flag-parsing helpers shared by the optiplet command-line tools.

#include <optional>
#include <string>
#include <vector>

#include "util/strings.hpp"

namespace optiplet::cli {

using util::join;
using util::split;

inline std::optional<double> parse_double(const std::string& text) {
  try {
    std::size_t used = 0;
    const double value = std::stod(text, &used);
    if (used != text.size()) {
      return std::nullopt;
    }
    return value;
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

inline std::optional<std::size_t> parse_count(const std::string& text) {
  const auto value = parse_double(text);
  if (!value || *value < 0 ||
      *value != static_cast<double>(static_cast<std::size_t>(*value))) {
    return std::nullopt;
  }
  return static_cast<std::size_t>(*value);
}

/// Walks argv-style arguments with support for both the `--flag value`
/// and `--flag=value` spellings.
class FlagCursor {
 public:
  FlagCursor(int argc, char** argv) : args_(argv + 1, argv + argc) {}

  /// Advance to the next argument; false at the end.
  bool next() {
    if (index_ >= args_.size()) {
      return false;
    }
    flag_ = args_[index_++];
    inline_value_.reset();
    if (flag_.rfind("--", 0) == 0) {
      if (const auto eq = flag_.find('='); eq != std::string::npos) {
        inline_value_ = flag_.substr(eq + 1);
        flag_ = flag_.substr(0, eq);
      }
    }
    return true;
  }

  /// The current flag name (the part before '=' for --flag=value).
  [[nodiscard]] const std::string& flag() const { return flag_; }

  /// True when the current flag was spelled --flag=value (an error for
  /// flags that take no value).
  [[nodiscard]] bool has_inline_value() const {
    return inline_value_.has_value();
  }

  /// The current flag's value: the inline part, or the next argument
  /// (consumed). nullopt when neither exists.
  [[nodiscard]] std::optional<std::string> value() {
    if (inline_value_) {
      return inline_value_;
    }
    if (index_ >= args_.size()) {
      return std::nullopt;
    }
    return args_[index_++];
  }

 private:
  std::vector<std::string> args_;
  std::size_t index_ = 0;
  std::string flag_;
  std::optional<std::string> inline_value_;
};

}  // namespace optiplet::cli
