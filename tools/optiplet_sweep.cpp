/// \file optiplet_sweep.cpp
/// Command-line front end of the sweep engine: declare an arbitrary
/// scenario grid with flags, evaluate it on a worker pool, print the
/// per-architecture summary, and dump the full grid as CSV.
///
/// Examples:
///   optiplet_sweep --models LeNet5,VGG16 --archs all --out grid.csv
///   optiplet_sweep --wavelengths 16,32,64 --gateways 2,4 \
///       --modulations ook,pam4 --threads 4
///   optiplet_sweep --models LeNet5 --set resipi.epoch_s=5e-6,1e-5,2e-5
///   optiplet_sweep --list-overrides

#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "dnn/zoo.hpp"
#include "engine/result_store.hpp"
#include "engine/scenario.hpp"
#include "engine/sweep_runner.hpp"
#include "util/table.hpp"

namespace {

using namespace optiplet;

constexpr const char* kUsage = R"(optiplet_sweep — parallel scenario-grid evaluation

Every flag below adds one axis to a cartesian grid; unset axes keep the
Table-1 default configuration. Infeasible combinations (wavelengths not
divisible by gateways; SiPh link budget that cannot close) are skipped.

  --models NAMES       comma list of Table-2 models, or "all" (default all)
  --archs NAMES        comma list of mono|elec|siph, or "all" (default siph)
  --batch-sizes LIST   comma list of batch sizes
  --wavelengths LIST   comma list of WDM channel counts
  --gateways LIST      comma list of gateways per chiplet
  --modulations LIST   comma list of ook|pam4
  --fidelity LIST      comma list of analytical|cycle (default analytical).
                       "cycle" drives the SiPh interposer cycle-accurately
                       (SWMR/SWSR arbitration + in-cycle ReSiPI epochs);
                       other architectures always use the analytical model
  --set KEY=V1,V2,...  sweep axis over a named SystemConfig override
                       (repeatable; see --list-overrides)
  --threads N          worker threads (default 0 = hardware concurrency)
  --out FILE           output CSV path (default sweep.csv)
  --quiet              suppress the progress meter
  --list-overrides     print the valid --set keys and exit
  --help               this text

Value flags also accept the --flag=value spelling (e.g. --fidelity=cycle).
)";

std::vector<std::string> split(const std::string& text, char sep) {
  std::vector<std::string> parts;
  std::string current;
  for (const char c : text) {
    if (c == sep) {
      parts.push_back(current);
      current.clear();
    } else {
      current += c;
    }
  }
  parts.push_back(current);
  return parts;
}

std::optional<double> parse_double(const std::string& text) {
  try {
    std::size_t used = 0;
    const double value = std::stod(text, &used);
    if (used != text.size()) {
      return std::nullopt;
    }
    return value;
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

std::optional<std::size_t> parse_count(const std::string& text) {
  const auto value = parse_double(text);
  if (!value || *value < 0 ||
      *value != static_cast<double>(static_cast<std::size_t>(*value))) {
    return std::nullopt;
  }
  return static_cast<std::size_t>(*value);
}

int fail(const std::string& message) {
  std::fprintf(stderr, "optiplet_sweep: %s\n", message.c_str());
  std::fprintf(stderr, "Run with --help for usage.\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  engine::ScenarioGrid grid;
  std::size_t threads = 0;
  std::string out_path = "sweep.csv";
  bool quiet = false;

  const std::vector<std::string> args(argv + 1, argv + argc);
  for (std::size_t i = 0; i < args.size(); ++i) {
    std::string arg = args[i];
    // --flag=value spelling: split once; --set keeps its own KEY=... value.
    std::optional<std::string> inline_value;
    if (arg.rfind("--", 0) == 0) {
      if (const auto eq = arg.find('='); eq != std::string::npos) {
        inline_value = arg.substr(eq + 1);
        arg = arg.substr(0, eq);
      }
    }
    const auto next_value = [&]() -> std::optional<std::string> {
      if (inline_value) {
        return inline_value;
      }
      if (i + 1 >= args.size()) {
        return std::nullopt;
      }
      return args[++i];
    };
    if (inline_value &&
        (arg == "--help" || arg == "-h" || arg == "--quiet" ||
         arg == "--list-overrides")) {
      return fail("flag does not take a value: " + arg);
    }
    if (arg == "--help" || arg == "-h") {
      std::fputs(kUsage, stdout);
      return 0;
    }
    if (arg == "--list-overrides") {
      for (const auto& key : engine::override_keys()) {
        std::printf("%s\n", key.c_str());
      }
      return 0;
    }
    if (arg == "--quiet") {
      quiet = true;
      continue;
    }
    const bool known_value_flag =
        arg == "--models" || arg == "--archs" || arg == "--batch-sizes" ||
        arg == "--wavelengths" || arg == "--gateways" ||
        arg == "--modulations" || arg == "--fidelity" || arg == "--set" ||
        arg == "--threads" || arg == "--out";
    if (!known_value_flag) {
      return fail("unknown flag: " + arg);
    }
    const auto value = next_value();
    if (!value) {
      return fail("missing value for " + arg);
    }
    if (arg == "--models") {
      if (*value != "all") {
        grid.models = split(*value, ',');
      }
    } else if (arg == "--archs") {
      if (*value == "all") {
        grid.architectures = {accel::Architecture::kMonolithicCrossLight,
                              accel::Architecture::kElec2p5D,
                              accel::Architecture::kSiph2p5D};
      } else {
        for (const auto& name : split(*value, ',')) {
          const auto arch = engine::architecture_from_string(name);
          if (!arch) {
            return fail("unknown architecture: " + name);
          }
          grid.architectures.push_back(*arch);
        }
      }
    } else if (arg == "--batch-sizes") {
      for (const auto& text : split(*value, ',')) {
        const auto batch = parse_count(text);
        if (!batch || *batch == 0) {
          return fail("bad batch size: " + text);
        }
        grid.batch_sizes.push_back(static_cast<unsigned>(*batch));
      }
    } else if (arg == "--wavelengths") {
      for (const auto& text : split(*value, ',')) {
        const auto count = parse_count(text);
        if (!count || *count == 0) {
          return fail("bad wavelength count: " + text);
        }
        grid.wavelengths.push_back(*count);
      }
    } else if (arg == "--gateways") {
      for (const auto& text : split(*value, ',')) {
        const auto count = parse_count(text);
        if (!count || *count == 0) {
          return fail("bad gateway count: " + text);
        }
        grid.gateways_per_chiplet.push_back(*count);
      }
    } else if (arg == "--modulations") {
      for (const auto& name : split(*value, ',')) {
        const auto mod = engine::modulation_from_string(name);
        if (!mod) {
          return fail("unknown modulation: " + name);
        }
        grid.modulations.push_back(*mod);
      }
    } else if (arg == "--fidelity") {
      for (const auto& name : split(*value, ',')) {
        const auto fid = engine::fidelity_from_string(name);
        if (!fid) {
          return fail("unknown fidelity: " + name);
        }
        grid.fidelities.push_back(*fid);
      }
    } else if (arg == "--set") {
      const auto eq = value->find('=');
      if (eq == std::string::npos || eq == 0) {
        return fail("--set expects KEY=V1,V2,... got: " + *value);
      }
      std::pair<std::string, std::vector<double>> axis;
      axis.first = value->substr(0, eq);
      for (const auto& text : split(value->substr(eq + 1), ',')) {
        const auto v = parse_double(text);
        if (!v) {
          return fail("bad override value for " + axis.first + ": " + text);
        }
        axis.second.push_back(*v);
      }
      grid.override_axes.push_back(std::move(axis));
    } else if (arg == "--threads") {
      const auto count = parse_count(*value);
      if (!count) {
        return fail("bad thread count: " + *value);
      }
      threads = *count;
    } else {  // --out, the last known_value_flag
      out_path = *value;
    }
  }

  engine::SweepOptions options;
  options.threads = threads;
  if (!quiet) {
    options.progress = [](std::size_t done, std::size_t total) {
      std::fprintf(stderr, "\r%zu/%zu scenarios", done, total);
      if (done == total) {
        std::fputc('\n', stderr);
      }
    };
  }

  engine::SweepRunner runner(core::default_system_config(), options);
  engine::ResultStore store;
  try {
    store.add_all(runner.run(grid));
  } catch (const std::exception& e) {
    return fail(std::string("sweep failed: ") + e.what());
  }

  const std::size_t raw = grid.raw_size();
  std::printf("Grid: %zu scenarios (%zu raw, %zu infeasible skipped), "
              "%zu threads, %zu simulated, %zu cache hits\n\n",
              store.size(), raw, raw - store.size(), runner.threads(),
              runner.cache_entries(), runner.cache_hits());
  if (store.empty()) {
    std::printf("No feasible scenarios — nothing to report.\n");
    return 1;
  }

  util::TextTable summary(
      {"Architecture", "Runs", "Power (W)", "Latency (ms)", "EPB (pJ/bit)"});
  for (const auto& avg : store.by_architecture()) {
    std::size_t count = 0;
    for (const auto& r : store.results()) {
      count += accel::to_string(r.spec.arch) == avg.platform ? 1 : 0;
    }
    summary.add_row({avg.platform, std::to_string(count),
                     util::format_fixed(avg.power_w, 2),
                     util::format_fixed(avg.latency_s * 1e3, 4),
                     util::format_fixed(avg.epb_j_per_bit * 1e12, 1)});
  }
  std::fputs(summary.render().c_str(), stdout);

  const auto* fastest = store.best_by(
      [](const engine::ScenarioResult& r) { return r.run.latency_s; });
  const auto* greenest = store.best_by(
      [](const engine::ScenarioResult& r) { return r.run.epb_j_per_bit; });
  std::printf("\nFastest scenario:  %s  (%.4f ms)\n",
              fastest->spec.key().c_str(), fastest->run.latency_s * 1e3);
  std::printf("Lowest-EPB scenario: %s  (%.1f pJ/bit)\n",
              greenest->spec.key().c_str(),
              greenest->run.epb_j_per_bit * 1e12);

  if (!store.write_csv(out_path)) {
    return fail("cannot write " + out_path);
  }
  std::printf("\nFull grid written to %s\n", out_path.c_str());
  return 0;
}
