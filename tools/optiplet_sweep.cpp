/// \file optiplet_sweep.cpp
/// Command-line front end of the sweep engine: declare an arbitrary
/// scenario grid with flags, evaluate it on a worker pool, print the
/// per-architecture summary, and dump the full grid as CSV.
///
/// Examples:
///   optiplet_sweep --models LeNet5,VGG16 --archs all --out grid.csv
///   optiplet_sweep --wavelengths 16,32,64 --gateways 2,4 \
///       --modulations ook,pam4 --threads 4
///   optiplet_sweep --models DenseNet121 --fidelity sampled:windows=8,seed=1
///   optiplet_sweep --models LeNet5 --set resipi.epoch_s=5e-6,1e-5,2e-5
///   optiplet_sweep --list-overrides

#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>
#include <vector>

#include "cli_support.hpp"
#include "dnn/zoo.hpp"
#include "engine/result_store.hpp"
#include "engine/scenario.hpp"
#include "engine/sweep_runner.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

namespace {

using namespace optiplet;
using cli::join;
using cli::parse_double;
using cli::split;

/// Dump every scenario's per-layer breakdown (computed by the simulator on
/// each run, but unreachable from the CLI before this flag existed).
bool write_per_layer_csv(const std::string& path,
                         const engine::ResultStore& store) {
  util::CsvWriter csv(path,
                      {"model", "architecture", "batch_size", "wavelengths",
                       "gateways_per_chiplet", "modulation", "fidelity",
                       "overrides", "layer_index", "group", "chiplets_used",
                       "compute_s", "read_s", "write_s", "overhead_s",
                       "total_s", "gateways_active"});
  if (!csv.ok()) {
    return false;
  }
  const auto overrides_cell = [](const engine::ScenarioSpec& spec) {
    std::vector<std::string> parts;
    for (const auto& [name, value] : spec.overrides) {
      parts.push_back(name + "=" + util::format_general(value));
    }
    return join(parts, " ");
  };
  for (const auto& r : store.results()) {
    for (const auto& layer : r.run.layers) {
      csv.add_row({r.spec.model, accel::to_string(r.spec.arch),
                   std::to_string(r.spec.batch_size),
                   std::to_string(r.spec.wavelengths),
                   std::to_string(r.spec.gateways_per_chiplet),
                   photonics::to_string(r.spec.modulation),
                   core::to_string(r.spec.fidelity),
                   overrides_cell(r.spec),
                   std::to_string(layer.layer_index),
                   accel::to_string(layer.group),
                   std::to_string(layer.chiplets_used),
                   util::format_general(layer.compute_s),
                   util::format_general(layer.read_s),
                   util::format_general(layer.write_s),
                   util::format_general(layer.overhead_s),
                   util::format_general(layer.total_s),
                   std::to_string(layer.gateways_per_chiplet)});
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  engine::ScenarioGrid grid;
  std::size_t threads = 0;
  std::string out_path = "sweep.csv";
  std::string per_layer_path;
  cli::Logger log;

  cli::OptionSet options_set(
      "optiplet_sweep",
      R"(optiplet_sweep — parallel scenario-grid evaluation

Every flag below adds one axis to a cartesian grid; unset axes keep the
Table-1 default configuration. Infeasible combinations (wavelengths not
divisible by gateways; SiPh link budget that cannot close) are skipped.)");
  options_set
      .add("--models", "NAMES",
           "comma list of registry models, or \"all\" (default all;\n"
           "see --list-models)",
           [&grid](const std::string& value) -> std::optional<std::string> {
             if (value == "all") {
               grid.models.clear();
               return std::nullopt;
             }
             return cli::store_model_list(grid.models)(value);
           })
      .add("--archs", "NAMES",
           "comma list of mono|elec|siph, or \"all\" (default siph)",
           [&grid](const std::string& value) -> std::optional<std::string> {
             if (value == "all") {
               grid.architectures = {
                   accel::Architecture::kMonolithicCrossLight,
                   accel::Architecture::kElec2p5D,
                   accel::Architecture::kSiph2p5D};
               return std::nullopt;
             }
             return cli::append_choices(grid.architectures,
                                        engine::architecture_from_string,
                                        "architecture",
                                        "mono, elec, siph, all")(value);
           })
      .add("--batch-sizes", "LIST", "comma list of batch sizes",
           cli::append_counts(grid.batch_sizes, "batch size"))
      .add("--wavelengths", "LIST", "comma list of WDM channel counts",
           cli::append_counts(grid.wavelengths, "wavelength count"))
      .add("--gateways", "LIST", "comma list of gateways per chiplet",
           cli::append_counts(grid.gateways_per_chiplet, "gateway count"))
      .add("--modulations", "LIST", "comma list of ook|pam4",
           cli::append_choices(grid.modulations,
                               engine::modulation_from_string, "modulation",
                               "ook, pam4"))
      .add("--fidelity", "LIST", cli::fidelity_help(),
           cli::append_fidelities(grid.fidelities))
      .add("--set", "KEY=V1,V2,...",
           "sweep axis over a named SystemConfig override\n"
           "(repeatable; see --list-overrides)",
           [&grid](const std::string& value) -> std::optional<std::string> {
             const auto eq = value.find('=');
             if (eq == std::string::npos || eq == 0) {
               return "--set expects KEY=V1,V2,... got: " + value;
             }
             std::pair<std::string, std::vector<double>> axis;
             axis.first = value.substr(0, eq);
             for (const auto& text : split(value.substr(eq + 1), ',')) {
               const auto v = parse_double(text);
               if (!v) {
                 return "bad override value for " + axis.first + ": " + text;
               }
               axis.second.push_back(*v);
             }
             grid.override_axes.push_back(std::move(axis));
             return std::nullopt;
           })
      .add("--threads", "N",
           "worker threads; must be a positive integer\n"
           "(default: hardware concurrency)",
           cli::store_threads(threads))
      .add("--out", "FILE", "output CSV path (default sweep.csv)",
           cli::store_string(out_path))
      .add("--per-layer", "FILE",
           "also dump the per-layer timing/provisioning\n"
           "breakdown of every scenario as CSV",
           cli::store_string(per_layer_path));
  cli::add_log_flags(options_set, log)
      .add_action("--list-models",
                  "print the model registry (name, family, params) and exit",
                  cli::list_models_action())
      .add_action("--list-overrides", "print the valid --set keys and exit",
                  [] {
                    for (const auto& key : engine::override_keys()) {
                      std::printf("%s\n", key.c_str());
                    }
                    return 0;
                  })
      .set_epilog("Value flags also accept the --flag=value spelling "
                  "(e.g. --fidelity=cycle).");
  if (const auto exit_code = options_set.parse(argc, argv)) {
    return *exit_code;
  }

  engine::SweepOptions options;
  options.threads = threads;
  if (log.debug_enabled()) {
    // Per-scenario lines replace the \r meter (they would interleave).
    options.scenario_progress =
        [&log](const engine::ScenarioProgress& p) {
          if (p.from_cache) {
            log.debug("[%zu/%zu] %s  (cache)\n", p.done, p.total,
                      p.key.c_str());
          } else {
            log.debug("[%zu/%zu] %s  %.3f s\n", p.done, p.total,
                      p.key.c_str(), p.wall_s);
          }
        };
  } else if (log.info_enabled()) {
    options.progress = [](std::size_t done, std::size_t total) {
      std::fprintf(stderr, "\r%zu/%zu scenarios", done, total);
      if (done == total) {
        std::fputc('\n', stderr);
      }
    };
  }

  engine::SweepRunner runner(core::default_system_config(), options);
  log.info("Running on %zu worker threads\n", runner.threads());
  engine::ResultStore store;
  try {
    store.add_all(runner.run(grid));
  } catch (const std::exception& e) {
    return options_set.fail(std::string("sweep failed: ") + e.what());
  }

  const std::size_t raw = grid.raw_size();
  log.result("Grid: %zu scenarios (%zu raw, %zu infeasible skipped), "
             "%zu threads, %zu simulated, %zu cache hits\n\n",
             store.size(), raw, raw - store.size(), runner.threads(),
             runner.cache_entries(), runner.cache_hits());
  if (store.empty()) {
    log.result("No feasible scenarios — nothing to report.\n");
    return 1;
  }

  util::TextTable summary(
      {"Architecture", "Runs", "Power (W)", "Latency (ms)", "EPB (pJ/bit)"});
  for (const auto& avg : store.by_architecture()) {
    std::size_t count = 0;
    for (const auto& r : store.results()) {
      count += accel::to_string(r.spec.arch) == avg.platform ? 1 : 0;
    }
    summary.add_row({avg.platform, std::to_string(count),
                     util::format_fixed(avg.power_w, 2),
                     util::format_fixed(avg.latency_s * 1e3, 4),
                     util::format_fixed(avg.epb_j_per_bit * 1e12, 1)});
  }
  log.result("%s", summary.render().c_str());

  const auto* fastest = store.best_by(
      [](const engine::ScenarioResult& r) { return r.run.latency_s; });
  const auto* greenest = store.best_by(
      [](const engine::ScenarioResult& r) { return r.run.epb_j_per_bit; });
  log.result("\nFastest scenario:  %s  (%.4f ms)\n",
             fastest->spec.key().c_str(), fastest->run.latency_s * 1e3);
  log.result("Lowest-EPB scenario: %s  (%.1f pJ/bit)\n",
             greenest->spec.key().c_str(),
             greenest->run.epb_j_per_bit * 1e12);

  // Self-profiling footer (per-scenario eval_wall_s lands in the CSV).
  if (log.info_enabled()) {
    double eval_wall_s = 0.0;
    const engine::ScenarioResult* slowest = nullptr;
    for (const auto& r : store.results()) {
      if (r.from_cache) {
        continue;
      }
      eval_wall_s += r.eval_wall_s;
      if (slowest == nullptr || r.eval_wall_s > slowest->eval_wall_s) {
        slowest = &r;
      }
    }
    log.info("\nProfile: %.2f s eval wall across %zu simulated scenarios\n",
             eval_wall_s, runner.cache_entries());
    if (slowest != nullptr) {
      log.info("Slowest scenario: %s (%.2f s)\n",
               slowest->spec.key().c_str(), slowest->eval_wall_s);
    }
  }

  if (!store.write_csv(out_path)) {
    return options_set.fail("cannot write " + out_path);
  }
  log.result("\nFull grid written to %s\n", out_path.c_str());
  if (!per_layer_path.empty()) {
    if (!write_per_layer_csv(per_layer_path, store)) {
      return options_set.fail("cannot write " + per_layer_path);
    }
    log.result("Per-layer breakdown written to %s\n",
               per_layer_path.c_str());
  }
  return 0;
}
