/// \file optiplet_sweep.cpp
/// Command-line front end of the sweep engine: declare an arbitrary
/// scenario grid with flags, evaluate it on a worker pool, print the
/// per-architecture summary, and dump the full grid as CSV.
///
/// Examples:
///   optiplet_sweep --models LeNet5,VGG16 --archs all --out grid.csv
///   optiplet_sweep --wavelengths 16,32,64 --gateways 2,4 \
///       --modulations ook,pam4 --threads 4
///   optiplet_sweep --models LeNet5 --set resipi.epoch_s=5e-6,1e-5,2e-5
///   optiplet_sweep --list-overrides

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "cli_support.hpp"
#include "dnn/zoo.hpp"
#include "engine/result_store.hpp"
#include "engine/scenario.hpp"
#include "engine/sweep_runner.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

namespace {

using namespace optiplet;
using cli::join;
using cli::parse_count;
using cli::parse_double;
using cli::split;

constexpr const char* kUsage =
    R"(optiplet_sweep — parallel scenario-grid evaluation

Every flag below adds one axis to a cartesian grid; unset axes keep the
Table-1 default configuration. Infeasible combinations (wavelengths not
divisible by gateways; SiPh link budget that cannot close) are skipped.

  --models NAMES       comma list of Table-2 models, or "all" (default all;
                       see --list-models)
  --archs NAMES        comma list of mono|elec|siph, or "all" (default siph)
  --batch-sizes LIST   comma list of batch sizes
  --wavelengths LIST   comma list of WDM channel counts
  --gateways LIST      comma list of gateways per chiplet
  --modulations LIST   comma list of ook|pam4
  --fidelity LIST      comma list of analytical|cycle (default analytical).
                       "cycle" drives the SiPh interposer cycle-accurately
                       (SWMR/SWSR arbitration + in-cycle ReSiPI epochs);
                       other architectures always use the analytical model
  --set KEY=V1,V2,...  sweep axis over a named SystemConfig override
                       (repeatable; see --list-overrides)
  --threads N          worker threads; must be a positive integer
                       (default: hardware concurrency)
  --out FILE           output CSV path (default sweep.csv)
  --per-layer FILE     also dump the per-layer timing/provisioning
                       breakdown of every scenario as CSV
  --quiet              suppress the progress meter
  --list-models        print the Table-2 model names and exit
  --list-overrides     print the valid --set keys and exit
  --help               this text

Value flags also accept the --flag=value spelling (e.g. --fidelity=cycle).
)";

int fail(const std::string& message) {
  std::fprintf(stderr, "optiplet_sweep: %s\n", message.c_str());
  std::fprintf(stderr, "Run with --help for usage.\n");
  return 2;
}

/// Dump every scenario's per-layer breakdown (computed by the simulator on
/// each run, but unreachable from the CLI before this flag existed).
bool write_per_layer_csv(const std::string& path,
                         const engine::ResultStore& store) {
  util::CsvWriter csv(path,
                      {"model", "architecture", "batch_size", "wavelengths",
                       "gateways_per_chiplet", "modulation", "fidelity",
                       "overrides", "layer_index", "group", "chiplets_used",
                       "compute_s", "read_s", "write_s", "overhead_s",
                       "total_s", "gateways_active"});
  if (!csv.ok()) {
    return false;
  }
  const auto overrides_cell = [](const engine::ScenarioSpec& spec) {
    std::vector<std::string> parts;
    for (const auto& [name, value] : spec.overrides) {
      parts.push_back(name + "=" + util::format_general(value));
    }
    return join(parts, " ");
  };
  for (const auto& r : store.results()) {
    for (const auto& layer : r.run.layers) {
      csv.add_row({r.spec.model, accel::to_string(r.spec.arch),
                   std::to_string(r.spec.batch_size),
                   std::to_string(r.spec.wavelengths),
                   std::to_string(r.spec.gateways_per_chiplet),
                   photonics::to_string(r.spec.modulation),
                   core::to_string(r.spec.fidelity),
                   overrides_cell(r.spec),
                   std::to_string(layer.layer_index),
                   accel::to_string(layer.group),
                   std::to_string(layer.chiplets_used),
                   util::format_general(layer.compute_s),
                   util::format_general(layer.read_s),
                   util::format_general(layer.write_s),
                   util::format_general(layer.overhead_s),
                   util::format_general(layer.total_s),
                   std::to_string(layer.gateways_per_chiplet)});
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  engine::ScenarioGrid grid;
  std::size_t threads = 0;
  std::string out_path = "sweep.csv";
  std::string per_layer_path;
  bool quiet = false;

  // --flag=value spelling handled by the cursor; --set keeps its own
  // KEY=... value (the cursor only splits the first '=' of the flag).
  cli::FlagCursor cursor(argc, argv);
  while (cursor.next()) {
    const std::string& arg = cursor.flag();
    if (cursor.has_inline_value() &&
        (arg == "--help" || arg == "-h" || arg == "--quiet" ||
         arg == "--list-models" || arg == "--list-overrides")) {
      return fail("flag does not take a value: " + arg);
    }
    if (arg == "--help" || arg == "-h") {
      std::fputs(kUsage, stdout);
      return 0;
    }
    if (arg == "--list-models") {
      for (const auto& name : dnn::zoo::model_names()) {
        std::printf("%s\n", name.c_str());
      }
      return 0;
    }
    if (arg == "--list-overrides") {
      for (const auto& key : engine::override_keys()) {
        std::printf("%s\n", key.c_str());
      }
      return 0;
    }
    if (arg == "--quiet") {
      quiet = true;
      continue;
    }
    const bool known_value_flag =
        arg == "--models" || arg == "--archs" || arg == "--batch-sizes" ||
        arg == "--wavelengths" || arg == "--gateways" ||
        arg == "--modulations" || arg == "--fidelity" || arg == "--set" ||
        arg == "--threads" || arg == "--out" || arg == "--per-layer";
    if (!known_value_flag) {
      return fail("unknown flag: " + arg);
    }
    const auto value = cursor.value();
    if (!value) {
      return fail("missing value for " + arg);
    }
    if (arg == "--models") {
      if (*value != "all") {
        const auto known = dnn::zoo::model_names();
        for (const auto& name : split(*value, ',')) {
          if (std::find(known.begin(), known.end(), name) == known.end()) {
            return fail("unknown model: " + name +
                        " (valid: " + join(known, ", ") + ")");
          }
        }
        grid.models = split(*value, ',');
      }
    } else if (arg == "--archs") {
      if (*value == "all") {
        grid.architectures = {accel::Architecture::kMonolithicCrossLight,
                              accel::Architecture::kElec2p5D,
                              accel::Architecture::kSiph2p5D};
      } else {
        for (const auto& name : split(*value, ',')) {
          const auto arch = engine::architecture_from_string(name);
          if (!arch) {
            return fail("unknown architecture: " + name +
                        " (valid: mono, elec, siph, all)");
          }
          grid.architectures.push_back(*arch);
        }
      }
    } else if (arg == "--batch-sizes") {
      for (const auto& text : split(*value, ',')) {
        const auto batch = parse_count(text);
        if (!batch || *batch == 0) {
          return fail("bad batch size: " + text);
        }
        grid.batch_sizes.push_back(static_cast<unsigned>(*batch));
      }
    } else if (arg == "--wavelengths") {
      for (const auto& text : split(*value, ',')) {
        const auto count = parse_count(text);
        if (!count || *count == 0) {
          return fail("bad wavelength count: " + text);
        }
        grid.wavelengths.push_back(*count);
      }
    } else if (arg == "--gateways") {
      for (const auto& text : split(*value, ',')) {
        const auto count = parse_count(text);
        if (!count || *count == 0) {
          return fail("bad gateway count: " + text);
        }
        grid.gateways_per_chiplet.push_back(*count);
      }
    } else if (arg == "--modulations") {
      for (const auto& name : split(*value, ',')) {
        const auto mod = engine::modulation_from_string(name);
        if (!mod) {
          return fail("unknown modulation: " + name +
                      " (valid: ook, pam4)");
        }
        grid.modulations.push_back(*mod);
      }
    } else if (arg == "--fidelity") {
      for (const auto& name : split(*value, ',')) {
        const auto fid = engine::fidelity_from_string(name);
        if (!fid) {
          return fail("unknown fidelity: " + name +
                      " (valid: analytical, cycle)");
        }
        grid.fidelities.push_back(*fid);
      }
    } else if (arg == "--set") {
      const auto eq = value->find('=');
      if (eq == std::string::npos || eq == 0) {
        return fail("--set expects KEY=V1,V2,... got: " + *value);
      }
      std::pair<std::string, std::vector<double>> axis;
      axis.first = value->substr(0, eq);
      for (const auto& text : split(value->substr(eq + 1), ',')) {
        const auto v = parse_double(text);
        if (!v) {
          return fail("bad override value for " + axis.first + ": " + text);
        }
        axis.second.push_back(*v);
      }
      grid.override_axes.push_back(std::move(axis));
    } else if (arg == "--threads") {
      const auto count = parse_count(*value);
      if (!count || *count == 0) {
        return fail("bad thread count: " + *value +
                    " (need a positive integer; omit the flag for "
                    "hardware concurrency)");
      }
      threads = *count;
    } else if (arg == "--per-layer") {
      per_layer_path = *value;
    } else {  // --out, the last known_value_flag
      out_path = *value;
    }
  }

  engine::SweepOptions options;
  options.threads = threads;
  if (!quiet) {
    options.progress = [](std::size_t done, std::size_t total) {
      std::fprintf(stderr, "\r%zu/%zu scenarios", done, total);
      if (done == total) {
        std::fputc('\n', stderr);
      }
    };
  }

  engine::SweepRunner runner(core::default_system_config(), options);
  if (!quiet) {
    std::fprintf(stderr, "Running on %zu worker threads\n",
                 runner.threads());
  }
  engine::ResultStore store;
  try {
    store.add_all(runner.run(grid));
  } catch (const std::exception& e) {
    return fail(std::string("sweep failed: ") + e.what());
  }

  const std::size_t raw = grid.raw_size();
  std::printf("Grid: %zu scenarios (%zu raw, %zu infeasible skipped), "
              "%zu threads, %zu simulated, %zu cache hits\n\n",
              store.size(), raw, raw - store.size(), runner.threads(),
              runner.cache_entries(), runner.cache_hits());
  if (store.empty()) {
    std::printf("No feasible scenarios — nothing to report.\n");
    return 1;
  }

  util::TextTable summary(
      {"Architecture", "Runs", "Power (W)", "Latency (ms)", "EPB (pJ/bit)"});
  for (const auto& avg : store.by_architecture()) {
    std::size_t count = 0;
    for (const auto& r : store.results()) {
      count += accel::to_string(r.spec.arch) == avg.platform ? 1 : 0;
    }
    summary.add_row({avg.platform, std::to_string(count),
                     util::format_fixed(avg.power_w, 2),
                     util::format_fixed(avg.latency_s * 1e3, 4),
                     util::format_fixed(avg.epb_j_per_bit * 1e12, 1)});
  }
  std::fputs(summary.render().c_str(), stdout);

  const auto* fastest = store.best_by(
      [](const engine::ScenarioResult& r) { return r.run.latency_s; });
  const auto* greenest = store.best_by(
      [](const engine::ScenarioResult& r) { return r.run.epb_j_per_bit; });
  std::printf("\nFastest scenario:  %s  (%.4f ms)\n",
              fastest->spec.key().c_str(), fastest->run.latency_s * 1e3);
  std::printf("Lowest-EPB scenario: %s  (%.1f pJ/bit)\n",
              greenest->spec.key().c_str(),
              greenest->run.epb_j_per_bit * 1e12);

  if (!store.write_csv(out_path)) {
    return fail("cannot write " + out_path);
  }
  std::printf("\nFull grid written to %s\n", out_path.c_str());
  if (!per_layer_path.empty()) {
    if (!write_per_layer_csv(per_layer_path, store)) {
      return fail("cannot write " + per_layer_path);
    }
    std::printf("Per-layer breakdown written to %s\n",
                per_layer_path.c_str());
  }
  return 0;
}
